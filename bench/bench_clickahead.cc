// E3 — paper §Experiences: "click ahead is possible due to buffering in the
// I/O channels". A user clicks while the backend is busy; the clicks'
// messages queue in the channel, none are lost, order is preserved, and the
// backend drains them when it returns.
#include <cstring>

#include "bench/bench_util.h"

namespace {

void BM_ClickAheadBurst(benchmark::State& state) {
  const int clicks = static_cast<int>(state.range(0));
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  harness.Send("%command b topLevel callback {echo clicked}");
  harness.Send("%realize");
  harness.Pump();
  xtk::Widget* b = app->app().FindWidget("b");
  xsim::Point p = app->app().display().RootPosition(b->window());
  std::size_t delivered = 0;
  for (auto _ : state) {
    // The backend is "busy": it reads nothing while the user clicks away.
    for (int i = 0; i < clicks; ++i) {
      app->app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
      app->app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    }
    app->app().ProcessPending();
    // The backend returns and drains its stdin: every click must be there.
    std::string all;
    while (all.size() < static_cast<std::size_t>(clicks) * 8) {
      std::string chunk = harness.Read();
      if (chunk.empty()) {
        break;
      }
      all += chunk;
    }
    std::size_t got = 0;
    std::size_t pos = 0;
    while ((pos = all.find("clicked\n", pos)) != std::string::npos) {
      ++got;
      pos += 8;
    }
    delivered += got;
    if (got != static_cast<std::size_t>(clicks)) {
      state.SkipWithError("click lost!");
      return;
    }
  }
  state.counters["clicks_per_burst"] = clicks;
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClickAheadBurst)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_EventQueueDepthWhileBusy(benchmark::State& state) {
  // Raw display-queue buffering: how fast events queue while nothing reads.
  auto app = bench_util::MakeRealizedWafe();
  for (auto _ : state) {
    state.PauseTiming();
    while (app->app().display().Pending()) {
      app->app().display().NextEvent();
    }
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      app->app().display().InjectButtonPress(5, 5, 1);
    }
    benchmark::DoNotOptimize(app->app().display().Pending());
  }
}
BENCHMARK(BM_EventQueueDepthWhileBusy);

}  // namespace

WAFE_BENCH_MAIN();
