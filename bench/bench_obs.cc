// Overhead of the observability layer (src/obs) on the two hottest
// instrumented paths — Tcl command evaluation and Xt event dispatch — in
// the three operating states: disabled (the permanent production cost of
// the inline gates), metrics only (counters + histograms), and full
// tracing (ring-buffer spans). The disabled state is the one that matters:
// it must stay within noise of an uninstrumented build (~5%).
#include "bench/bench_util.h"

#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/tcl/interp.h"
#include "src/xt/app.h"

namespace {

void SetObsState(int state) {
  // 0 = disabled, 1 = metrics, 2 = metrics + trace.
  wobs::SetTraceEnabled(state >= 2);
  wobs::SetMetricsEnabled(state >= 1);
  wobs::Registry::Instance().ResetMetrics();
  wobs::Registry::Instance().ring().Clear();
}

const char* StateName(int state) {
  switch (state) {
    case 0:
      return "disabled";
    case 1:
      return "metrics";
    default:
      return "trace";
  }
}

// The raw gate: what one instrumented-but-disabled site costs.
void BM_ObsGateOnly(benchmark::State& state) {
  SetObsState(0);
  static wobs::Counter counter("bench.obs.gate");
  for (auto _ : state) {
    counter.Increment();
  }
  SetObsState(0);
}
BENCHMARK(BM_ObsGateOnly);

void BM_ObsCounterEnabled(benchmark::State& state) {
  SetObsState(1);
  static wobs::Counter counter("bench.obs.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  SetObsState(0);
}
BENCHMARK(BM_ObsCounterEnabled);

void BM_ObsScopedEventFullTrace(benchmark::State& state) {
  SetObsState(2);
  static wobs::Histogram hist("bench.obs.span");
  for (auto _ : state) {
    wobs::ScopedEvent span("bench", "span", &hist);
    benchmark::DoNotOptimize(span);
  }
  SetObsState(0);
}
BENCHMARK(BM_ObsScopedEventFullTrace);

// The request scope a %-line opens: two atomic exchanges each way.
void BM_ObsRequestScope(benchmark::State& state) {
  SetObsState(0);
  for (auto _ : state) {
    wobs::RequestScope scope;
    benchmark::DoNotOptimize(scope.id());
  }
}
BENCHMARK(BM_ObsRequestScope);

// Per-command latency attribution: one mutex + map lookup when enabled.
void BM_ObsLabeledHistogram(benchmark::State& state) {
  SetObsState(1);
  static wobs::LabeledHistogram labeled("bench.obs.labeled");
  for (auto _ : state) {
    labeled.Record("setValues", 1000);
  }
  SetObsState(0);
}
BENCHMARK(BM_ObsLabeledHistogram);

// Rendering the Prometheus exposition (the WAFE_METRICS_DUMP snapshot cost).
void BM_ObsPrometheusRender(benchmark::State& state) {
  SetObsState(1);
  for (auto _ : state) {
    std::string text = wobs::MetricsPrometheus();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * wobs::MetricsPrometheus().size()));
  SetObsState(0);
}
BENCHMARK(BM_ObsPrometheusRender);

// Tcl command evaluation (the tcl.* instruments sit in Eval/InvokeCommand).
void BM_TclEvalUnderObs(benchmark::State& state) {
  SetObsState(static_cast<int>(state.range(0)));
  wtcl::Interp interp;
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set x value");
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(StateName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(state.iterations());
  SetObsState(0);
}
BENCHMARK(BM_TclEvalUnderObs)->Arg(0)->Arg(1)->Arg(2);

// Xt event dispatch through a realized tree (the xt.* / xsim.* instruments).
void BM_DispatchUnderObs(benchmark::State& state) {
  SetObsState(static_cast<int>(state.range(0)));
  wafe::Wafe wafe;
  wafe.Eval("command hello topLevel callback {set fired 1}");
  wafe.Eval("realize");
  xtk::Widget* hello = wafe.app().FindWidget("hello");
  xsim::Point p = wafe.app().display().RootPosition(hello->window());
  for (auto _ : state) {
    wafe.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    wafe.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    wafe.app().ProcessPending();
  }
  state.SetLabel(StateName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(state.iterations());
  SetObsState(0);
}
BENCHMARK(BM_DispatchUnderObs)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

WAFE_BENCH_MAIN();
