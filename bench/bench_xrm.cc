// E11 — paper §Setting and Retrieving Resource Values: resource database
// lookups back every widget creation (the per-display database "is searched
// for entries relevant for the new widget instance"). Query and merge
// scaling with database size and widget-tree depth.
#include "bench/bench_util.h"

#include "src/xt/xrm.h"

namespace {

using Path = std::vector<std::pair<std::string, std::string>>;

xtk::ResourceDatabase MakeDatabase(int entries) {
  xtk::ResourceDatabase db;
  for (int i = 0; i < entries; ++i) {
    switch (i % 4) {
      case 0:
        db.MergeLine("*widget" + std::to_string(i) + ".background: red");
        break;
      case 1:
        db.MergeLine("app.form.widget" + std::to_string(i) + ".foreground: blue");
        break;
      case 2:
        db.MergeLine("*Class" + std::to_string(i) + "*font: fixed");
        break;
      default:
        db.MergeLine("app*label" + std::to_string(i) + ": value" + std::to_string(i));
        break;
    }
  }
  db.MergeLine("*foreground: black");
  return db;
}

void BM_QueryVsDatabaseSize(benchmark::State& state) {
  xtk::ResourceDatabase db = MakeDatabase(static_cast<int>(state.range(0)));
  Path path{{"app", "App"}, {"form", "Form"}, {"button", "Command"}};
  for (auto _ : state) {
    auto v = db.Query(path, {"foreground", "Foreground"});
    benchmark::DoNotOptimize(v);
  }
  state.counters["entries"] = static_cast<double>(db.size());
}
BENCHMARK(BM_QueryVsDatabaseSize)->Arg(10)->Arg(100)->Arg(1000);

void BM_QueryVsTreeDepth(benchmark::State& state) {
  xtk::ResourceDatabase db = MakeDatabase(100);
  Path path{{"app", "App"}};
  for (int d = 0; d < state.range(0); ++d) {
    path.emplace_back("level" + std::to_string(d), "Form");
  }
  for (auto _ : state) {
    auto v = db.Query(path, {"foreground", "Foreground"});
    benchmark::DoNotOptimize(v);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_QueryVsTreeDepth)->Arg(1)->Arg(4)->Arg(8);

void BM_MergeLine(benchmark::State& state) {
  xtk::ResourceDatabase db;
  long i = 0;
  for (auto _ : state) {
    db.MergeLine("*widget" + std::to_string(i++) + ".background: red");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeLine);

void BM_MergeResourceFileBlock(benchmark::State& state) {
  std::string block;
  for (int i = 0; i < 50; ++i) {
    block += "*entry" + std::to_string(i) + ".label: value\n";
  }
  for (auto _ : state) {
    xtk::ResourceDatabase db;
    std::size_t merged = db.MergeString(block);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergeResourceFileBlock);

}  // namespace

WAFE_BENCH_MAIN();
