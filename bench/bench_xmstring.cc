// E8 — paper Figure 3 and §XmString Converter: compound strings with font
// tags and writing-direction changes. Measures fontList parsing, markup
// parsing, and the full render of the paper's example label.
#include "bench/bench_util.h"

#include "src/core/wafe.h"
#include "src/xm/xmstring.h"

namespace {

constexpr char kPaperFontList[] = "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft";
constexpr char kPaperMarkup[] = "I'm\\bft bold\\ft and\\rl strange";

void BM_ParseFontList(benchmark::State& state) {
  for (auto _ : state) {
    auto fonts = xmw::ParseFontList(kPaperFontList);
    benchmark::DoNotOptimize(fonts);
  }
}
BENCHMARK(BM_ParseFontList);

void BM_ParseXmString(benchmark::State& state) {
  auto fonts = xmw::ParseFontList(kPaperFontList);
  std::string error;
  for (auto _ : state) {
    auto parsed = xmw::ParseXmString(kPaperMarkup, &*fonts, &error);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseXmString);

void BM_ParseXmStringLong(benchmark::State& state) {
  auto fonts = xmw::ParseFontList(kPaperFontList);
  std::string markup;
  for (int i = 0; i < 50; ++i) {
    markup += "plain \\bft bold segment \\ft ";
  }
  std::string error;
  for (auto _ : state) {
    auto parsed = xmw::ParseXmString(markup, &*fonts, &error);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<long>(markup.size()) * state.iterations());
}
BENCHMARK(BM_ParseXmStringLong);

void BM_RenderCompoundStringLabel(benchmark::State& state) {
  wafe::Options options;
  options.widget_set = wafe::WidgetSet::kMotif;
  wafe::Wafe app(options);
  app.Eval(std::string("mLabel l topLevel fontList {") + kPaperFontList +
           "} labelString {" + kPaperMarkup + "}");
  app.Eval("realize");
  xtk::Widget* l = app.app().FindWidget("l");
  for (auto _ : state) {
    app.app().Redraw(l);
  }
  state.counters["segments"] = 4;  // I'm | bold | and | strange (reversed)
}
BENCHMARK(BM_RenderCompoundStringLabel);

void BM_SetLabelStringThroughProtocolCommand(benchmark::State& state) {
  wafe::Options options;
  options.widget_set = wafe::WidgetSet::kMotif;
  wafe::Wafe app(options);
  app.Eval(std::string("mLabel l topLevel fontList {") + kPaperFontList + "}");
  app.Eval("realize");
  long i = 0;
  for (auto _ : state) {
    app.Eval(i++ % 2 ? "sV l labelString {plain \\bft bold}"
                     : "sV l labelString {other \\ft text}");
  }
}
BENCHMARK(BM_SetLabelStringThroughProtocolCommand);

}  // namespace

WAFE_BENCH_MAIN();
