// Wafe core: naming rules, the spec registry, percent codes, the command
// surface, converters, predefined callbacks, and the exec action.
#include <gtest/gtest.h>

#include "src/core/naming.h"
#include "src/core/percent.h"
#include "src/core/wafe.h"

namespace wafe {
namespace {

// --- Naming rules ----------------------------------------------------------------

struct NamingCase {
  const char* c_name;
  const char* wafe_name;
};

class NamingTest : public ::testing::TestWithParam<NamingCase> {};

TEST_P(NamingTest, CommandNameFromC) {
  EXPECT_EQ(CommandNameFromC(GetParam().c_name), GetParam().wafe_name);
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, NamingTest,
    ::testing::Values(NamingCase{"XtDestroyWidget", "destroyWidget"},
                      NamingCase{"XawFormAllowResize", "formAllowResize"},
                      NamingCase{"XmCommandAppendValue", "mCommandAppendValue"},
                      NamingCase{"XmCascadeButtonHighlight", "mCascadeButtonHighlight"},
                      NamingCase{"XtGetResourceList", "getResourceList"},
                      NamingCase{"XtSetValues", "setValues"},
                      NamingCase{"XLoadQueryFont", "loadQueryFont"},
                      NamingCase{"XawListChange", "listChange"}));

TEST(Naming, CreationCommands) {
  EXPECT_EQ(CreationCommandFromClass("Toggle"), "toggle");
  EXPECT_EQ(CreationCommandFromClass("Label"), "label");
  EXPECT_EQ(CreationCommandFromClass("AsciiText"), "asciiText");
  EXPECT_EQ(CreationCommandFromClass("XmCascadeButton"), "mCascadeButton");
  EXPECT_EQ(CreationCommandFromClass("XmPushButton"), "mPushButton");
  EXPECT_EQ(CreationCommandFromClass("ApplicationShell"), "applicationShell");
}

// --- Fixtures -----------------------------------------------------------------------

class WafeTest : public ::testing::Test {
 protected:
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
    return r.value;
  }

  wtcl::Result EvalErr(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_EQ(r.code, wtcl::Status::kError) << "script: " << script;
    return r;
  }

  std::string Output(const std::string& script) {
    captured_.clear();
    wafe_.interp().set_output([this](const std::string& t) { captured_ += t; });
    Eval(script);
    return captured_;
  }

  xsim::Display& display() { return wafe_.app().display(); }

  void Click(xtk::Widget* w) {
    xsim::Point p = display().RootPosition(w->window());
    display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    wafe_.app().ProcessPending();
  }

  Wafe wafe_;
  std::string captured_;
};

// --- Widget commands -----------------------------------------------------------------

TEST_F(WafeTest, TopLevelExists) {
  EXPECT_NE(wafe_.top_level(), nullptr);
  EXPECT_EQ(wafe_.app().FindWidget("topLevel"), wafe_.top_level());
}

TEST_F(WafeTest, CreationCommandReturnsName) {
  EXPECT_EQ(Eval("label l topLevel"), "l");
  EXPECT_NE(wafe_.app().FindWidget("l"), nullptr);
}

TEST_F(WafeTest, CreationWithResources) {
  Eval("label label1 topLevel background red foreground blue");
  xtk::Widget* w = wafe_.app().FindWidget("label1");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->GetPixel("background", 0), xsim::MakePixel(255, 0, 0));
}

TEST_F(WafeTest, CreationErrors) {
  EvalErr("label l noSuchFather");
  EvalErr("label");  // wrong # args
  wtcl::Result r = EvalErr("label l topLevel badResource 1");
  EXPECT_NE(r.value.find("unknown resource"), std::string::npos);
  Eval("label dup topLevel");
  EvalErr("label dup topLevel");
}

TEST_F(WafeTest, UnmanagedCreation) {
  Eval("label hidden topLevel unmanaged width 50");
  xtk::Widget* w = wafe_.app().FindWidget("hidden");
  ASSERT_NE(w, nullptr);
  EXPECT_FALSE(w->managed());
  EXPECT_EQ(w->width(), 50u);
}

TEST_F(WafeTest, GetResourceListPaperExample) {
  Eval("label l topLevel");
  EXPECT_EQ(Eval("getResourceList l retVal"), "42");
  std::string list;
  ASSERT_TRUE(wafe_.interp().GetVar("retVal", &list));
  EXPECT_EQ(list.rfind("destroyCallback ancestorSensitive x y width height borderWidth "
                       "sensitive screen depth colormap background",
                       0),
            0u)
      << list;
}

TEST_F(WafeTest, SetValuesAndAliases) {
  Eval("label label1 topLevel");
  Eval("setValues label1 background tomato label {Hi Man}");
  EXPECT_EQ(Eval("gV label1 label"), "Hi Man");
  Eval("sV label1 label other");
  EXPECT_EQ(Eval("getValue label1 label"), "other");
}

TEST_F(WafeTest, SetValuesErrors) {
  Eval("label l topLevel");
  EvalErr("sV l noSuch resource");
  EvalErr("sV l background");  // missing value
  EvalErr("sV noWidget background red");
}

TEST_F(WafeTest, DestroyWidget) {
  Eval("form f topLevel");
  Eval("label l f");
  Eval("destroyWidget f");
  EXPECT_EQ(wafe_.app().FindWidget("f"), nullptr);
  EXPECT_EQ(wafe_.app().FindWidget("l"), nullptr);
}

TEST_F(WafeTest, RealizeMapsTree) {
  Eval("label l topLevel");
  Eval("realize");
  xtk::Widget* l = wafe_.app().FindWidget("l");
  EXPECT_TRUE(l->realized());
  EXPECT_TRUE(display().IsViewable(l->window()));
}

TEST_F(WafeTest, ManageUnmanage) {
  Eval("label l topLevel");
  Eval("realize");
  Eval("unmanageChild l");
  xtk::Widget* l = wafe_.app().FindWidget("l");
  EXPECT_FALSE(display().IsMapped(l->window()));
  Eval("manageChild l");
  EXPECT_TRUE(display().IsMapped(l->window()));
}

TEST_F(WafeTest, IntrospectionCommands) {
  Eval("form f topLevel");
  Eval("label a f; label b f");
  EXPECT_EQ(Eval("children f"), "a b");
  EXPECT_EQ(Eval("parent a"), "f");
  EXPECT_EQ(Eval("class a"), "Label");
  EXPECT_EQ(Eval("isManaged a"), "1");
  EXPECT_EQ(Eval("isRealized a"), "0");
  EXPECT_EQ(Eval("nameToWidget b"), "b");
  EXPECT_EQ(Eval("nameToWidget nosuch"), "");
  std::string widgets = Eval("widgets");
  EXPECT_NE(widgets.find("topLevel"), std::string::npos);
}

TEST_F(WafeTest, SensitivityCommand) {
  Eval("command c topLevel");
  Eval("setSensitive c false");
  EXPECT_EQ(Eval("isSensitive c"), "0");
  EXPECT_EQ(Eval("gV c sensitive"), "False");
  Eval("setSensitive c true");
  EXPECT_EQ(Eval("isSensitive c"), "1");
}

TEST_F(WafeTest, MoveResizeCommands) {
  Eval("label l topLevel");
  Eval("moveWidget l 30 40");
  Eval("resizeWidget l 111 22");
  xtk::Widget* l = wafe_.app().FindWidget("l");
  EXPECT_EQ(l->x(), 30);
  EXPECT_EQ(l->y(), 40);
  EXPECT_EQ(l->width(), 111u);
  EXPECT_EQ(l->height(), 22u);
}

TEST_F(WafeTest, FontCommands) {
  std::string name = Eval("loadQueryFont *lucida-bold-r*14*");
  EXPECT_NE(name.find("lucida"), std::string::npos);
  EXPECT_NE(name.find("bold"), std::string::npos);
  std::string count = Eval("listFonts *lucida* fontVar");
  EXPECT_GT(std::stoi(count), 10);
  EvalErr("loadQueryFont *nothing-matches*");
}

// --- mergeResources --------------------------------------------------------------------

TEST_F(WafeTest, MergeResourcesPaperExample) {
  Eval(
      "mergeResources {\n"
      "  *Font fixed\n"
      "  *foreground blue\n"
      "  *background red\n"
      "}");
  Eval("label hello topLevel");
  xtk::Widget* hello = wafe_.app().FindWidget("hello");
  EXPECT_EQ(hello->GetPixel("foreground", 0), xsim::MakePixel(0, 0, 255));
  EXPECT_EQ(hello->GetPixel("background", 0), xsim::MakePixel(255, 0, 0));
}

TEST_F(WafeTest, MergeResourcesPairForm) {
  Eval("mergeResources *foreground green");
  Eval("label l topLevel");
  EXPECT_EQ(wafe_.app().FindWidget("l")->GetPixel("foreground", 0),
            xsim::MakePixel(0, 255, 0));
}

TEST_F(WafeTest, CreationArgsOverrideMergedResources) {
  Eval("mergeResources *background red");
  Eval("label l topLevel background blue");
  EXPECT_EQ(wafe_.app().FindWidget("l")->GetPixel("background", 0),
            xsim::MakePixel(0, 0, 255));
}

// --- Callback converter -------------------------------------------------------------------

TEST_F(WafeTest, CallbackScriptFires) {
  Eval("command hello topLevel callback {set fired 1}");
  Eval("realize");
  Click(wafe_.app().FindWidget("hello"));
  EXPECT_EQ(Eval("set fired"), "1");
}

TEST_F(WafeTest, CallbackEchoHelloWorld) {
  Eval("command hello topLevel callback {echo hello world}");
  Eval("realize");
  captured_.clear();
  wafe_.interp().set_output([this](const std::string& t) { captured_ += t; });
  Click(wafe_.app().FindWidget("hello"));
  EXPECT_EQ(captured_, "hello world\n");
}

TEST_F(WafeTest, CallbackReadableViaGv) {
  // The paper: Wafe (unlike Xt) can read a callback resource back, and the
  // value can seed another widget's callback.
  Eval("form f topLevel");
  Eval("command c1 f callback {echo i am %w.}");
  Eval("command c2 f callback [gV c1 callback] fromVert c1");
  Eval("realize");
  captured_.clear();
  wafe_.interp().set_output([this](const std::string& t) { captured_ += t; });
  Click(wafe_.app().FindWidget("c1"));
  EXPECT_EQ(captured_, "i am c1.\n");
  captured_.clear();
  Click(wafe_.app().FindWidget("c2"));
  EXPECT_EQ(captured_, "i am c2.\n");
}

TEST_F(WafeTest, ListCallbackPercentCodes) {
  Eval("label confirmLab topLevel label {}");
  Eval("list chooseLst topLevel list {aaa,bbb,ccc}");
  Eval("sV chooseLst callback {sV confirmLab label %s}");
  Eval("realize");
  xtk::Widget* list = wafe_.app().FindWidget("chooseLst");
  xsim::Point p = display().RootPosition(list->window());
  display().InjectButtonPress(p.x + 3, p.y + 4, 1);  // first row
  display().InjectButtonRelease(p.x + 3, p.y + 4, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("gV confirmLab label"), "aaa");
}

TEST_F(WafeTest, SetValuesFreesOldCallback) {
  Eval("command c topLevel callback {set x old}");
  Eval("sV c callback {set x new}");
  Eval("realize");
  Click(wafe_.app().FindWidget("c"));
  EXPECT_EQ(Eval("set x"), "new");
  EXPECT_EQ(Eval("gV c callback"), "set x new");
}

// --- Predefined callbacks --------------------------------------------------------------------

TEST_F(WafeTest, PredefinedPopupCallbacks) {
  Eval("transientShell popup topLevel");
  Eval("label inside popup");
  Eval("command b topLevel");
  Eval("callback b callback none popup");
  Eval("realize");
  Click(wafe_.app().FindWidget("b"));
  xtk::Widget* popup = wafe_.app().FindWidget("popup");
  EXPECT_TRUE(wafe_.app().IsPoppedUp(popup));
  EXPECT_EQ(display().PointerGrab(), xsim::kNoWindow);  // grab none

  Eval("command down topLevel");
  Eval("callback down callback popdown popup");
  Click(wafe_.app().FindWidget("down"));
  EXPECT_FALSE(wafe_.app().IsPoppedUp(popup));
}

TEST_F(WafeTest, PredefinedExclusiveGrabs) {
  Eval("transientShell popup topLevel");
  Eval("label inside popup");
  Eval("command b topLevel");
  Eval("callback b callback exclusive popup");
  Eval("realize");
  Click(wafe_.app().FindWidget("b"));
  xtk::Widget* popup = wafe_.app().FindWidget("popup");
  EXPECT_TRUE(wafe_.app().IsPoppedUp(popup));
  EXPECT_EQ(display().PointerGrab(), popup->window());
  Eval("popdown popup");
  EXPECT_EQ(display().PointerGrab(), xsim::kNoWindow);
}

TEST_F(WafeTest, PredefinedCallbackErrors) {
  Eval("command b topLevel");
  EvalErr("callback b callback none");            // missing shell
  EvalErr("callback b callback bogus topLevel");  // unknown type
  EvalErr("callback b noSuchResource none topLevel");
}

// --- Actions and exec -------------------------------------------------------------------------

TEST_F(WafeTest, ActionOverridePaperKeyEcho) {
  // The paper's xev example: typing "w!" prints
  //   198 w w / 174 Shift_L / 197 ! exclam
  Eval("label xev topLevel");
  Eval("action xev override {<KeyPress>: exec(echo %k %a %s)}");
  Eval("realize");
  captured_.clear();
  wafe_.interp().set_output([this](const std::string& t) { captured_ += t; });
  xtk::Widget* xev = wafe_.app().FindWidget("xev");
  display().SetInputFocus(xev->window());
  display().InjectKeyPress(xsim::AsciiToKeysym('w'));
  display().InjectKeyPress(xsim::kKeyShiftL);
  display().InjectKeyPress(xsim::AsciiToKeysym('!'), xsim::kShiftMask);
  wafe_.app().ProcessPending();
  EXPECT_EQ(captured_, "198 w w\n174 Shift_L\n197 ! exclam\n");
}

TEST_F(WafeTest, ExecActionCoordinates) {
  Eval("label pad topLevel width 100 height 100");
  // Note: commas would be parsed as action-parameter separators, so the
  // script uses dashes.
  Eval("action pad override {<Btn1Down>: exec(set where %x-%y-%X-%Y-%b-%t)}");
  Eval("realize");
  xtk::Widget* pad = wafe_.app().FindWidget("pad");
  xsim::Point p = display().RootPosition(pad->window());
  display().InjectButtonPress(p.x + 7, p.y + 9, 1);
  wafe_.app().ProcessPending();
  std::string where = Eval("set where");
  EXPECT_EQ(where, "7-9-" + std::to_string(p.x + 7) + "-" + std::to_string(p.y + 9) +
                       "-1-ButtonPress");
}

TEST_F(WafeTest, ActionEnterWindowPopupMenu) {
  Eval("simpleMenu menu topLevel");
  Eval("smeBSB item1 menu");
  Eval("menuButton mb topLevel");
  Eval("action mb override {<EnterWindow>: PopupMenu()}");
  Eval("realize");
  xtk::Widget* mb = wafe_.app().FindWidget("mb");
  xsim::Point p = display().RootPosition(mb->window());
  display().InjectMotion(p.x + 2, p.y + 2);
  wafe_.app().ProcessPending();
  EXPECT_TRUE(wafe_.app().IsPoppedUp(wafe_.app().FindWidget("menu")));
}

TEST_F(WafeTest, ActionModes) {
  Eval("label l topLevel");
  Eval("action l replace {<Btn1Down>: exec(set hit replace)}");
  Eval("action l augment {<Btn2Down>: exec(set hit augment)}");
  Eval("realize");
  xtk::Widget* l = wafe_.app().FindWidget("l");
  xsim::Point p = display().RootPosition(l->window());
  display().InjectButtonPress(p.x + 1, p.y + 1, 2);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("set hit"), "augment");
  display().InjectButtonPress(p.x + 1, p.y + 1, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("set hit"), "replace");
  EvalErr("action l badmode {<Btn1Down>: exec(set x 1)}");
  EvalErr("action l override {<Nope>: exec(set x 1)}");
}

// --- Timers ------------------------------------------------------------------------------------

TEST_F(WafeTest, AddTimeOutFires) {
  std::string id = Eval("addTimeOut 5 {set timer_fired 1}");
  EXPECT_FALSE(id.empty());
  // Pump the loop until the timer fires.
  for (int i = 0; i < 100 && !wafe_.interp().VarExists("timer_fired"); ++i) {
    wafe_.app().RunOneIteration(true);
  }
  EXPECT_EQ(Eval("set timer_fired"), "1");
}

TEST_F(WafeTest, RemoveTimeOut) {
  std::string id = Eval("addTimeOut 1000 {set never 1}");
  Eval("removeTimeOut " + id);
  wafe_.app().RunOneIteration(false);
  EXPECT_FALSE(wafe_.interp().VarExists("never"));
}

// --- Spec registry ------------------------------------------------------------------------------

TEST_F(WafeTest, ReferenceDocumentCoversCommands) {
  std::string reference = wafe_.specs().ReferenceText();
  EXPECT_NE(reference.find("destroyWidget"), std::string::npos);
  EXPECT_NE(reference.find("[XtDestroyWidget]"), std::string::npos);
  EXPECT_NE(reference.find("label name:String father:String"), std::string::npos);
  EXPECT_NE(reference.find("getResourceList"), std::string::npos);
}

TEST_F(WafeTest, GeneratedFractionMatchesPaperBallpark) {
  // The paper: "about 60% of the code is generated automatically".
  double generated = static_cast<double>(wafe_.specs().generated_count());
  double total = static_cast<double>(wafe_.specs().total_count());
  EXPECT_GT(generated / total, 0.5);
  EXPECT_GT(wafe_.specs().creation_command_count(), 15u);
}

TEST_F(WafeTest, SpecArityErrors) {
  wtcl::Result r = EvalErr("destroyWidget");
  EXPECT_NE(r.value.find("wrong # args"), std::string::npos);
  r = EvalErr("destroyWidget nosuch");
  EXPECT_NE(r.value.find("no such widget"), std::string::npos);
  Eval("label l topLevel");
  r = EvalErr("moveWidget l abc 3");
  EXPECT_NE(r.value.find("expected integer"), std::string::npos);
}

// --- Multi-display shells ------------------------------------------------------------------------

TEST_F(WafeTest, ApplicationShellOnOtherDisplay) {
  Eval("applicationShell top2 dec4:0");
  Eval("label l2 top2");
  Eval("realizeWidget top2");
  xtk::Widget* l2 = wafe_.app().FindWidget("l2");
  EXPECT_EQ(&l2->display(), &wafe_.app().OpenDisplay("dec4:0"));
  EXPECT_TRUE(wafe_.app().OpenDisplay("dec4:0").IsViewable(l2->window()));
}

// --- Pixmap converter -----------------------------------------------------------------------------

TEST_F(WafeTest, PixmapConverterInlineXbm) {
  Eval(
      "label l topLevel bitmap {#define i_width 8\n"
      "#define i_height 2\n"
      "static char i_bits[] = {0x01, 0x80};\n}");
  EXPECT_NE(wafe_.app().FindWidget("l")->GetPixmap("bitmap"), nullptr);
}

TEST_F(WafeTest, PixmapConverterFallsBackToXpm) {
  Eval(
      "label l topLevel bitmap {static char *p[] = {\n"
      "\"2 1 1 1\", \". c red\", \"..\"};\n}");
  xsim::PixmapPtr pixmap = wafe_.app().FindWidget("l")->GetPixmap("bitmap");
  ASSERT_NE(pixmap, nullptr);
  EXPECT_EQ(pixmap->At(0, 0), xsim::MakePixel(255, 0, 0));
}

TEST_F(WafeTest, PixmapConverterRejectsGarbage) {
  EvalErr("label l topLevel bitmap {not an image}");
}

// --- Percent-code engine (unit level) -----------------------------------------------------------

TEST(PercentCodes, EventSubstitution) {
  Wafe wafe;
  std::string error;
  xtk::Widget* w =
      wafe.app().CreateWidget("w1", "Label", wafe.top_level(), {}, true, &error);
  ASSERT_NE(w, nullptr) << error;
  xsim::Event event;
  event.type = xsim::EventType::kButtonPress;
  event.x = 3;
  event.y = 4;
  event.x_root = 13;
  event.y_root = 14;
  event.button = 2;
  EXPECT_EQ(SubstituteEventCodes("%w %t %b %x %y %X %Y %%", *w, event),
            "w1 ButtonPress 2 3 4 13 14 %");
  // Key codes on a button event expand empty.
  EXPECT_EQ(SubstituteEventCodes("[%a][%k][%s]", *w, event), "[][][]");
  // Unsupported event type reports "unknown".
  event.type = xsim::EventType::kMotionNotify;
  EXPECT_EQ(SubstituteEventCodes("%t", *w, event), "unknown");
}

TEST(PercentCodes, CallbackSubstitution) {
  Wafe wafe;
  std::string error;
  xtk::Widget* w =
      wafe.app().CreateWidget("lst", "List", wafe.top_level(), {}, true, &error);
  ASSERT_NE(w, nullptr) << error;
  xtk::CallData data;
  data.fields["i"] = "3";
  data.fields["s"] = "item three";
  EXPECT_EQ(SubstituteCallbackCodes("sV lab label %s (index %i) from %w", *w, data),
            "sV lab label item three (index 3) from lst");
  // Unknown codes pass through (format strings survive).
  EXPECT_EQ(SubstituteCallbackCodes("format %d", *w, data), "format %d");
}

// --- Command-line splitting ------------------------------------------------------------------------

TEST(CommandLine, SplitPerPaperRules) {
  const char* argv[] = {"wafe",     "--f",     "script.tcl", "-display", "host:0",
                        "-xrm",     "*bg:red", "appArg1",    "appArg2"};
  SplitArgs split = SplitCommandLine(9, argv);
  ASSERT_EQ(split.frontend.size(), 2u);
  EXPECT_EQ(split.frontend[0], "--f");
  EXPECT_EQ(split.frontend[1], "script.tcl");
  ASSERT_EQ(split.toolkit.size(), 4u);
  EXPECT_EQ(split.toolkit[1], "host:0");
  ASSERT_EQ(split.application.size(), 2u);
  EXPECT_EQ(split.application[0], "appArg1");
}

// --- Motif build ----------------------------------------------------------------------------------

class MofeTest : public ::testing::Test {
 protected:
  MofeTest() {
    Options options;
    options.widget_set = WidgetSet::kMotif;
    options.app_name = "mofe";
    options.app_class = "Mofe";
    wafe_ = std::make_unique<Wafe>(options);
  }

  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_->Eval(script);
    EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
    return r.value;
  }

  std::unique_ptr<Wafe> wafe_;
};

TEST_F(MofeTest, MotifCreationCommands) {
  Eval("mPushButton pressMe topLevel");
  EXPECT_EQ(wafe_->app().FindWidget("pressMe")->widget_class()->name, "XmPushButton");
  // Athena commands are absent in the Motif binary.
  EXPECT_FALSE(wafe_->interp().HasCommand("asciiText"));
  EXPECT_TRUE(wafe_->interp().HasCommand("mCascadeButton"));
}

TEST_F(MofeTest, PaperCompoundStringExample) {
  Eval(
      "mLabel l topLevel "
      "fontList {*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft} "
      "labelString {I'm\\bft bold\\ft and\\rl strange}");
  Eval("realize");
  // The bold segment renders in the bold font.
  bool bold_seen = false;
  for (const auto& op : wafe_->app().display().draw_ops()) {
    if (op.kind == xsim::Display::DrawOp::Kind::kText && op.text == " bold" &&
        op.font.find("bold") != std::string::npos) {
      bold_seen = true;
    }
  }
  EXPECT_TRUE(bold_seen);
  // The \rl segment renders reversed.
  bool reversed_seen = false;
  for (const auto& op : wafe_->app().display().draw_ops()) {
    if (op.kind == xsim::Display::DrawOp::Kind::kText &&
        op.text.find("egnarts") != std::string::npos) {
      reversed_seen = true;
    }
  }
  EXPECT_TRUE(reversed_seen);
}

TEST_F(MofeTest, ArmCallbackFiresOnPress) {
  Eval("mPushButton b topLevel");
  Eval("sV b armCallback {set armed 1}");
  Eval("realize");
  xtk::Widget* b = wafe_->app().FindWidget("b");
  xsim::Point p = wafe_->app().display().RootPosition(b->window());
  wafe_->app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  wafe_->app().ProcessPending();
  EXPECT_EQ(Eval("set armed"), "1");
}

TEST_F(MofeTest, CascadeButtonHighlightCommand) {
  Eval("mCascadeButton cb topLevel");
  Eval("realize");
  Eval("mCascadeButtonHighlight cb true");
  Eval("mCascadeButtonHighlight cb false");
}

TEST_F(MofeTest, CommandAppendValue) {
  Eval("mCommand cmd topLevel");
  Eval("mCommandSetValue cmd {ls }");
  Eval("mCommandAppendValue cmd {-l}");
  EXPECT_EQ(Eval("gV cmd command"), "ls -l");
}

TEST_F(MofeTest, BadCompoundStringRejected) {
  // Validation fires once the fontList is known (at creation time the
  // resource order is unconstrained, so unknown tags are tolerated then).
  Eval("mLabel l topLevel fontList {fixed=ft}");
  wtcl::Result r = wafe_->Eval("sV l labelString {bad \\nosuchtag here}");
  EXPECT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("compound string"), std::string::npos);
}

}  // namespace
}  // namespace wafe
