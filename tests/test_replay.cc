// Deterministic %-protocol record/replay: journal format roundtrips and
// torn-tail crash recovery, the in-process record -> replay golden contract
// (byte-identical framebuffer, window tree, and interp state), scripted
// ms-watchdog determinism under the virtual clock, the SIGKILL-and-restore
// acceptance path through the real wafe binary, the committed fault-journal
// corpus (tests/replay/corpus/*.wjt with #expect directives), and the
// recorder's flight-record / trace-position integration.
#include <gtest/gtest.h>
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/replay.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/xsim/display.h"
#include "src/xt/app.h"
#include "src/xt/widget.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif
#ifndef WAFE_BINARY
#error "WAFE_BINARY must point at the wafe executable"
#endif
#ifndef REPLAY_CORPUS_DIR
#error "REPLAY_CORPUS_DIR must point at tests/replay/corpus"
#endif

namespace wafe {
namespace {

std::string TempPath(const char* stem) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem + "." +
         std::to_string(::getpid());
}

std::uint64_t Metric(const std::string& name) {
  std::uint64_t value = 0;
  wobs::Registry::Instance().GetMetric(name, &value);
  return value;
}

// --- Journal format -----------------------------------------------------------

TEST(JournalFormat, WriterReaderRoundtrip) {
  std::string path = TempPath("journal_roundtrip");
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, FsyncPolicy::kNone, 0, &error)) << error;
    EXPECT_TRUE(writer.Append(JournalRecordType::kLine, "%set x 1"));
    EXPECT_TRUE(writer.Append(JournalRecordType::kEvent, "buttonpress 5 6 1 0"));
    EXPECT_TRUE(writer.Append(JournalRecordType::kTimer, "3"));
    EXPECT_TRUE(writer.Append(JournalRecordType::kNote, ""));
    EXPECT_EQ(writer.records_written(), 4u);
  }
  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_FALSE(reader.truncated());
  EXPECT_FALSE(reader.text_format());
  ASSERT_EQ(reader.records().size(), 4u);
  EXPECT_EQ(reader.records()[0].type, JournalRecordType::kLine);
  EXPECT_EQ(reader.records()[0].payload, "%set x 1");
  EXPECT_EQ(reader.records()[0].seq, 1u);
  EXPECT_EQ(reader.records()[1].type, JournalRecordType::kEvent);
  EXPECT_EQ(reader.records()[1].payload, "buttonpress 5 6 1 0");
  EXPECT_EQ(reader.records()[2].type, JournalRecordType::kTimer);
  EXPECT_EQ(reader.records()[3].type, JournalRecordType::kNote);
  EXPECT_EQ(reader.records()[3].payload, "");
  EXPECT_EQ(reader.records()[3].seq, 4u);
  // Timestamps are monotone non-decreasing (stamped from one clock).
  EXPECT_LE(reader.records()[0].vtime_ns, reader.records()[3].vtime_ns);
  ::unlink(path.c_str());
}

// A crash mid-append leaves a torn tail: read-back must keep every complete
// record, flag the truncation, and count replay.journal.truncated.
TEST(JournalFormat, TornTailRecoversToLastCompleteRecord) {
  std::string path = TempPath("journal_torn");
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, FsyncPolicy::kAlways, 0, &error)) << error;
    ASSERT_TRUE(writer.Append(JournalRecordType::kLine, "%set a 1"));
    ASSERT_TRUE(writer.Append(JournalRecordType::kLine, "%set b 2"));
  }
  // Simulate the torn tail of a third record: a plausible header and a few
  // payload bytes, cut off before the CRC.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {16, 0, 0, 0, 1, 3, 0, 0, 0, 0, 0, 0, 0, '%', 's', 'e'};
    out.write(torn, sizeof(torn));
  }
  std::uint64_t before = Metric("replay.journal.truncated");
  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_TRUE(reader.truncated());
  ASSERT_EQ(reader.records().size(), 2u);
  EXPECT_EQ(reader.records()[1].payload, "%set b 2");
  EXPECT_EQ(Metric("replay.journal.truncated"), before + 1);
  ::unlink(path.c_str());
}

// A complete tail record with a flipped payload byte fails the CRC: the
// corruption must not be replayed as if it were recorded traffic.
TEST(JournalFormat, CorruptTailFailsCrc) {
  std::string path = TempPath("journal_crc");
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, FsyncPolicy::kNone, 0, &error)) << error;
    ASSERT_TRUE(writer.Append(JournalRecordType::kLine, "%set keep 1"));
    ASSERT_TRUE(writer.Append(JournalRecordType::kLine, "%set flip 2"));
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-6, std::ios::end);  // inside the last record's payload
    f.put('X');
  }
  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_TRUE(reader.truncated());
  ASSERT_EQ(reader.records().size(), 1u);
  EXPECT_EQ(reader.records()[0].payload, "%set keep 1");
  ::unlink(path.c_str());
}

TEST(JournalFormat, BadMagicRejected) {
  std::string path = TempPath("journal_magic");
  {
    std::ofstream out(path);
    out << "this is not a journal\n";
  }
  JournalReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos);
  ::unlink(path.c_str());
}

// Text journals (the committed-corpus format) roundtrip through
// DumpJournalText and parse back to the same record stream.
TEST(JournalFormat, TextJournalRoundtrip) {
  std::string path = TempPath("journal_text");
  {
    std::ofstream out(path);
    out << "# wafe-journal-text 1\n"
        << "# a comment\n"
        << "vtime 5000000\n"
        << "line %set x 41\n"
        << "event buttonpress 10 12 1 0\n"
        << "vtime 6000000\n"
        << "timer 2\n"
        << "note free text here\n";
  }
  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_TRUE(reader.text_format());
  ASSERT_EQ(reader.records().size(), 4u);
  EXPECT_EQ(reader.records()[0].type, JournalRecordType::kLine);
  EXPECT_EQ(reader.records()[0].payload, "%set x 41");
  EXPECT_EQ(reader.records()[0].vtime_ns, 5000000u);
  EXPECT_EQ(reader.records()[2].vtime_ns, 6000000u);

  std::ostringstream dumped;
  DumpJournalText(reader.records(), dumped);
  std::string path2 = TempPath("journal_text2");
  {
    std::ofstream out(path2);
    out << dumped.str();
  }
  JournalReader reader2;
  ASSERT_TRUE(reader2.Open(path2, &error)) << error;
  ASSERT_EQ(reader2.records().size(), reader.records().size());
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    EXPECT_EQ(reader2.records()[i].type, reader.records()[i].type) << i;
    EXPECT_EQ(reader2.records()[i].payload, reader.records()[i].payload) << i;
    EXPECT_EQ(reader2.records()[i].vtime_ns, reader.records()[i].vtime_ns) << i;
  }
  ::unlink(path.c_str());
  ::unlink(path2.c_str());
}

TEST(JournalFormat, UnknownTextKeywordIsAnError) {
  std::string path = TempPath("journal_badkw");
  {
    std::ofstream out(path);
    out << "# wafe-journal-text 1\nbogus payload\n";
  }
  JournalReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  ::unlink(path.c_str());
}

// --- In-process record -> replay golden contract ------------------------------

class RecordReplayTest : public ::testing::Test {
 protected:
  RecordReplayTest() {
    int to_wafe[2];
    int from_wafe[2];
    EXPECT_EQ(::pipe(to_wafe), 0);
    EXPECT_EQ(::pipe(from_wafe), 0);
    backend_write_ = to_wafe[1];
    backend_read_ = from_wafe[0];
    wafe_.set_backend_output(true);
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~RecordReplayTest() override {
    ::close(backend_write_);
    ::close(backend_read_);
    wobs::SetMetricsEnabled(false);
  }

  void SendLines(const std::string& data) {
    ssize_t ignored = ::write(backend_write_, data.data(), data.size());
    (void)ignored;
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  std::string Var(Wafe& wafe, const std::string& name) {
    std::string value;
    return wafe.interp().GetVar(name, &value) ? value : std::string("<unset>");
  }

  Wafe wafe_;
  int backend_write_ = -1;
  int backend_read_ = -1;
};

// The tentpole contract: a recorded session replays byte-identically — the
// framebuffer checksum, the window tree, and the interp variables of the
// replayed instance equal the live session's, including the effect of
// injected UI events (a button click driving a callback).
TEST_F(RecordReplayTest, ReplayReproducesSessionByteIdentically) {
  std::string path = TempPath("golden_session");
  std::string error;
  ASSERT_TRUE(wafe_.StartRecording(path, &error)) << error;

  SendLines("%form top topLevel\n");
  SendLines("%label greeting top label {recorded session}\n");
  SendLines("%command go top label Go fromVert greeting callback {set clicked 1}\n");
  SendLines("%realize\n");
  SendLines("%set recorded(phase) built\n");
  // A real click through the display injection primitives: recorded as
  // kEvent records and replayed through the same primitives.
  xtk::Widget* go = wafe_.app().FindWidget("go");
  ASSERT_NE(go, nullptr);
  xsim::Point p = wafe_.app().display().RootPosition(go->window());
  auto cx = static_cast<xsim::Position>(p.x + 2);
  auto cy = static_cast<xsim::Position>(p.y + 2);
  wafe_.app().display().InjectButtonPress(cx, cy, 1, 0);
  wafe_.app().display().InjectButtonRelease(cx, cy, 1, 0);
  while (wafe_.app().RunOneIteration(false)) {
  }
  ASSERT_EQ(Var(wafe_, "clicked"), "1");
  SendLines("%set recorded(done) 1\n");

  std::uint64_t fb_live = FramebufferChecksum(wafe_.app().display());
  std::string tree_live = WindowTreeText(wafe_);
  ASSERT_NE(tree_live.find("greeting"), std::string::npos);
  wafe_.StopRecording();

  Wafe replayed;
  ReplayStats stats;
  ASSERT_TRUE(ReplayJournal(replayed, path, &stats, &error)) << error;
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(FramebufferChecksum(replayed.app().display()), fb_live);
  EXPECT_EQ(WindowTreeText(replayed), tree_live);
  EXPECT_EQ(Var(replayed, "clicked"), "1");
  EXPECT_EQ(Var(replayed, "recorded(phase)"), "built");
  EXPECT_EQ(Var(replayed, "recorded(done)"), "1");
  ::unlink(path.c_str());
}

// The one decision a frozen clock cannot reproduce — which probe the ms
// watchdog tripped at — is journaled and re-forced: the replayed loop stops
// at exactly the recorded iteration.
TEST_F(RecordReplayTest, ScriptedMsTripReplaysDeterministically) {
  std::string path = TempPath("mstrip_session");
  std::string error;
  ASSERT_TRUE(wafe_.StartRecording(path, &error)) << error;
  SendLines("%evalLimit ms 5\n");
  SendLines("%set i 0\n");
  SendLines("%while {$i < 5000000} {incr i}\n");
  std::string i_live = Var(wafe_, "i");
  ASSERT_NE(i_live, "<unset>");
  ASSERT_NE(i_live, "5000000") << "loop must trip the watchdog, not finish";
  wafe_.StopRecording();

  // The journal carries the trip: line record, then the kEvalTrip marker.
  JournalReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  bool saw_trip = false;
  for (const JournalRecord& record : reader.records()) {
    if (record.type == JournalRecordType::kEvalTrip) {
      saw_trip = true;
      EXPECT_EQ(record.payload.rfind("ms ", 0), 0u) << record.payload;
    }
  }
  ASSERT_TRUE(saw_trip);

  Wafe replayed;
  ReplayStats stats;
  ASSERT_TRUE(ReplayJournal(replayed, path, &stats, &error)) << error;
  EXPECT_EQ(stats.eval_trips, 1u);
  EXPECT_EQ(Var(replayed, "i"), i_live);
  ::unlink(path.c_str());
}

// Replaying the same journal twice from fresh instances lands on the same
// state: replay itself is deterministic.
TEST_F(RecordReplayTest, ReplayIsDeterministicAcrossRuns) {
  std::string path = TempPath("determinism_session");
  std::string error;
  ASSERT_TRUE(wafe_.StartRecording(path, &error)) << error;
  SendLines("%form top topLevel\n");
  SendLines("%asciiText input top editType edit width 200\n");
  SendLines("%label result top label {} width 200 fromVert input\n");
  SendLines("%realize\n");
  SendLines("%result set label {42 = 2 * 3 * 7}\n");
  wafe_.StopRecording();

  Wafe a;
  Wafe b;
  ReplayStats stats;
  ASSERT_TRUE(ReplayJournal(a, path, &stats, &error)) << error;
  ASSERT_TRUE(ReplayJournal(b, path, nullptr, &error)) << error;
  EXPECT_EQ(FramebufferChecksum(a.app().display()),
            FramebufferChecksum(b.app().display()));
  EXPECT_EQ(WindowTreeText(a), WindowTreeText(b));
  ::unlink(path.c_str());
}

// The `record` command: status/on/rotate/off drive the journal from Tcl.
TEST_F(RecordReplayTest, RecordCommandLifecycle) {
  std::string path = TempPath("record_cmd");
  EXPECT_EQ(wafe_.Eval("record status").value, "off");
  ASSERT_EQ(wafe_.Eval("record on " + path + ",fsync=always").code, wtcl::Status::kOk);
  wtcl::Result status = wafe_.Eval("record status");
  EXPECT_NE(status.value.find("recording 1"), std::string::npos);
  EXPECT_NE(status.value.find("fsync always"), std::string::npos);
  SendLines("%set rotated 0\n");
  wtcl::Result rotated = wafe_.Eval("record rotate");
  ASSERT_EQ(rotated.code, wtcl::Status::kOk);
  EXPECT_EQ(rotated.value, path + ".1");
  SendLines("%set rotated 1\n");
  ASSERT_EQ(wafe_.Eval("record off").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe_.Eval("record status").value, "off");
  EXPECT_NE(wafe_.Eval("record bogus").code, wtcl::Status::kOk);

  // Each segment is a complete, independently replayable journal.
  JournalReader first;
  JournalReader second;
  std::string error;
  ASSERT_TRUE(first.Open(path, &error)) << error;
  ASSERT_TRUE(second.Open(path + ".1", &error)) << error;
  ASSERT_EQ(first.records().size(), 1u);
  EXPECT_EQ(first.records()[0].payload, "%set rotated 0");
  ASSERT_EQ(second.records().size(), 1u);
  EXPECT_EQ(second.records()[0].payload, "%set rotated 1");
  ::unlink(path.c_str());
  ::unlink((path + ".1").c_str());
}

// While recording, every flight record names the journal and carries the
// recent %-traffic, so a crash dump is immediately replayable.
TEST_F(RecordReplayTest, FlightRecordsCarryJournalContext) {
  std::string path = TempPath("flight_ctx");
  std::string error;
  EXPECT_EQ(wobs::FlightContextJson(), "");
  ASSERT_TRUE(wafe_.StartRecording(path, &error)) << error;
  SendLines("%set flight 1\n");
  std::string context = wobs::FlightContextJson();
  EXPECT_NE(context.find("\"replay\":{"), std::string::npos);
  EXPECT_NE(context.find(path), std::string::npos);
  EXPECT_NE(context.find("%set flight 1"), std::string::npos);
  wafe_.StopRecording();
  EXPECT_EQ(wobs::FlightContextJson(), "");
  ::unlink(path.c_str());
}

// Trace events emitted while a journal is active carry the journal position
// ("jpos"), linking any span in the export to the record being processed.
TEST_F(RecordReplayTest, TraceEventsCarryJournalPosition) {
  wobs::SetMetricsEnabled(true);
  wobs::SetTraceEnabled(true);
  std::string path = TempPath("jpos_trace");
  std::string error;
  wobs::Registry::Instance().ring().Clear();
  ASSERT_TRUE(wafe_.StartRecording(path, &error)) << error;
  SendLines("%set traced 1\n");
  wafe_.StopRecording();
  std::string text = wobs::TraceText();
  EXPECT_NE(text.find("jpos="), std::string::npos) << text;
  std::ostringstream chrome;
  wobs::ExportChromeTrace(chrome);
  EXPECT_NE(chrome.str().find("\"jpos\":"), std::string::npos);
  wobs::SetTraceEnabled(false);
  ::unlink(path.c_str());
}

// --- SIGKILL crash recovery through the real binary ---------------------------

// The acceptance path: a recording frontend is SIGKILLed mid-session; the
// journal (fsync=always) replays in a fresh process image to the exact
// session state, twice over for byte-identical agreement.
TEST(CrashRecovery, KilledFrontendRestoresFromJournal) {
  std::string path = TempPath("kill_session");
  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], 1);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::setenv("WAFE_RECORD", (path + ",fsync=always").c_str(), 1);
    ::execl(WAFE_BINARY, WAFE_BINARY, WAFE_TEST_BACKEND, "buildlinger", "30000",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);

  // The backend passes "built-confirmed" through once the frontend has
  // processed (and, with fsync=always, durably journaled) every line.
  std::string seen;
  char c;
  while (seen.find("built-confirmed") == std::string::npos &&
         ::read(out_pipe[0], &c, 1) == 1) {
    seen.push_back(c);
  }
  ASSERT_NE(seen.find("built-confirmed"), std::string::npos) << seen;
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ::close(out_pipe[0]);

  Wafe restored;
  ReplayStats stats;
  std::string error;
  ASSERT_TRUE(ReplayJournal(restored, path, &stats, &error)) << error;
  EXPECT_GE(stats.lines, 5u);

  // The rebuilt session: tree realized, labels placed, variables restored.
  std::string tree = WindowTreeText(restored);
  EXPECT_NE(tree.find("greeting"), std::string::npos) << tree;
  EXPECT_NE(tree.find("go"), std::string::npos) << tree;
  EXPECT_NE(tree.find("viewable"), std::string::npos) << tree;
  std::string value;
  ASSERT_TRUE(restored.interp().GetVar("recorded(phase)", &value));
  EXPECT_EQ(value, "built");
  ASSERT_TRUE(restored.interp().GetVar("recorded(lines)", &value));
  EXPECT_EQ(value, "6");

  // Byte-identical agreement between two independent restorations.
  Wafe again;
  ASSERT_TRUE(ReplayJournal(again, path, nullptr, &error)) << error;
  EXPECT_EQ(FramebufferChecksum(restored.app().display()),
            FramebufferChecksum(again.app().display()));
  EXPECT_EQ(WindowTreeText(again), tree);
  ::unlink(path.c_str());
}

// --- Committed fault-regression corpus ----------------------------------------

// Every journal under tests/replay/corpus/ replays clean; `#expect <metric>
// <min-delta>` lines assert the fault it pins (a tripped breaker, a blown
// eval budget) actually re-fires.
TEST(ReplayCorpus, CommittedJournalsReplayAndRefire) {
  std::vector<std::string> entries;
  DIR* dir = ::opendir(REPLAY_CORPUS_DIR);
  ASSERT_NE(dir, nullptr) << REPLAY_CORPUS_DIR;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".wjt") == 0) {
      entries.push_back(std::string(REPLAY_CORPUS_DIR) + "/" + name);
    }
  }
  ::closedir(dir);
  ASSERT_GE(entries.size(), 4u);
  std::sort(entries.begin(), entries.end());

  wobs::SetMetricsEnabled(true);
  for (const std::string& journal : entries) {
    SCOPED_TRACE(journal);
    // Collect the journal's expectations.
    std::vector<std::pair<std::string, std::uint64_t>> expects;
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("#expect ", 0) == 0) {
        std::istringstream fields(line.substr(8));
        std::string metric;
        std::uint64_t min_delta = 0;
        fields >> metric >> min_delta;
        expects.emplace_back(metric, min_delta);
      }
    }
    EXPECT_FALSE(expects.empty()) << "corpus entry pins no metric";

    std::vector<std::uint64_t> before;
    for (const auto& expect : expects) {
      before.push_back(Metric(expect.first));
    }
    Wafe wafe;
    ReplayStats stats;
    std::string error;
    ASSERT_TRUE(ReplayJournal(wafe, journal, &stats, &error)) << error;
    EXPECT_GT(stats.records, 0u);
    for (std::size_t i = 0; i < expects.size(); ++i) {
      EXPECT_GE(Metric(expects[i].first) - before[i], expects[i].second)
          << expects[i].first;
    }
  }
  wobs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace wafe
