// Frontend-mode communication: the %-prefix protocol, pass-through lines,
// the mass-transfer channel, over-long line handling, backend crashes, and
// the complete prime-factor demo of the paper — against a real forked
// backend process.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>

#include "src/core/comm.h"
#include "src/core/wafe.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace wafe {
namespace {

class FrontendTest : public ::testing::Test {
 protected:
  // Pumps the main loop until `done` or a deadline passes.
  bool PumpUntil(Wafe& wafe, const std::function<bool()>& done, int timeout_ms = 5000) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      wafe.app().RunOneIteration(false);
      ::usleep(1000);
    }
    return true;
  }

  bool Spawn(Wafe& wafe, const std::string& mode,
             const std::vector<std::string>& extra = {}) {
    std::string error;
    wafe.set_backend_output(true);
    std::vector<std::string> args{mode};
    args.insert(args.end(), extra.begin(), extra.end());
    bool ok = wafe.frontend().SpawnBackend(WAFE_TEST_BACKEND, args, &error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

TEST_F(FrontendTest, BackendBuildsTreeAndRoundTrips) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "build"));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  xtk::Widget* greeting = wafe.app().FindWidget("greeting");
  ASSERT_NE(greeting, nullptr);
  EXPECT_EQ(greeting->GetString("label"), "backend was here");
  EXPECT_TRUE(greeting->realized());
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

TEST_F(FrontendTest, EchoRoundTripEvaluatesInFrontend) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "echo"));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  // The backend computed nothing itself: the frontend evaluated 6*7 and the
  // answer came back over the protocol.
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
  EXPECT_GE(wafe.frontend().lines_received(), 2u);
}

TEST_F(FrontendTest, PaperPrimeFactorDemo) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "primes"));
  // Phase 2: wait for the backend to build and realize the tree.
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    xtk::Widget* input = wafe.app().FindWidget("input");
    return input != nullptr && input->realized();
  }));
  xtk::Widget* input = wafe.app().FindWidget("input");
  // Phase 3: the user types 120 and Return; the exec action sends the text
  // widget's content to the backend, which factors it and updates `result`.
  wafe.app().display().SetInputFocus(input->window());
  wafe.app().display().InjectText("120");
  wafe.app().display().InjectKeyPress(xsim::kKeyReturn);
  wafe.app().ProcessPending();
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    xtk::Widget* result = wafe.app().FindWidget("result");
    return result != nullptr && result->GetString("label") == "2*2*2*3*5";
  }));
  xtk::Widget* info = wafe.app().FindWidget("info");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->GetString("label"), "0 seconds");

  // Invalid input gets the friendly message.
  std::string error;
  wafe.app().SetValues(input, {{"string", "xyz"}}, &error);
  wafe.app().display().InjectKeyPress(xsim::kKeyReturn);
  wafe.app().ProcessPending();
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    return wafe.app().FindWidget("info")->GetString("label") == "(invalid input)";
  }));

  // The quit button ends the application.
  xtk::Widget* quit = wafe.app().FindWidget("quit");
  xsim::Point p = wafe.app().display().RootPosition(quit->window());
  wafe.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  wafe.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
  wafe.app().ProcessPending();
  EXPECT_TRUE(wafe.quit_requested());
  wafe.frontend().CloseBackend();
}

TEST_F(FrontendTest, MassTransferStoresVariable) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "mass", {"100000"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  std::string value;
  ASSERT_TRUE(wafe.interp().GetVar("C", &value));
  ASSERT_EQ(value.size(), 100000u);
  EXPECT_EQ(value[0], 'a');
  EXPECT_EQ(value[25], 'z');
  EXPECT_EQ(value[26], 'a');
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

TEST_F(FrontendTest, SmallMassTransfer) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "mass", {"10"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  std::string value;
  ASSERT_TRUE(wafe.interp().GetVar("C", &value));
  EXPECT_EQ(value, "abcdefghij");
}

TEST_F(FrontendTest, OverlongLineDroppedButStreamSurvives) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "flood"));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  EXPECT_GE(wafe.frontend().overlong_lines(), 1u);
  // The valid command after the flood still executed.
  EXPECT_NE(wafe.app().FindWidget("ok"), nullptr);
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

TEST_F(FrontendTest, PipeTransportFallbackWorks) {
  // The paper: socketpair preferred, pipes supported for systems without it.
  Wafe wafe;
  wafe.set_backend_output(true);
  wafe.frontend().set_force_pipes(true);
  std::string error;
  ASSERT_TRUE(wafe.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"build"}, &error)) << error;
  EXPECT_FALSE(wafe.frontend().using_socketpair());
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  EXPECT_NE(wafe.app().FindWidget("greeting"), nullptr);
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

TEST_F(FrontendTest, BackendCrashEndsSession) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "crash"));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  // The widget created before the crash exists; the frontend noticed EOF.
  EXPECT_NE(wafe.app().FindWidget("orphan"), nullptr);
  EXPECT_FALSE(wafe.frontend().backend_alive());
}

// --- In-process protocol tests (no fork) ---------------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    int to_wafe[2];
    int from_wafe[2];
    EXPECT_EQ(::pipe(to_wafe), 0);
    EXPECT_EQ(::pipe(from_wafe), 0);
    backend_write_ = to_wafe[1];
    backend_read_ = from_wafe[0];
    wafe_.set_backend_output(true);
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~ProtocolTest() override {
    ::close(backend_write_);
    ::close(backend_read_);
  }

  void SendLines(const std::string& data) {
    ssize_t ignored = ::write(backend_write_, data.data(), data.size());
    (void)ignored;
    // Let the input handler fire.
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  std::string ReadFromWafe() {
    char buffer[4096];
    ssize_t n = ::read(backend_read_, buffer, sizeof(buffer));
    return n > 0 ? std::string(buffer, static_cast<std::size_t>(n)) : std::string();
  }

  Wafe wafe_;
  int backend_write_ = -1;
  int backend_read_ = -1;
};

TEST_F(ProtocolTest, PrefixedLinesEvaluate) {
  SendLines("%set x 41\n%incr x\n");
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("x", &value));
  EXPECT_EQ(value, "42");
  EXPECT_EQ(wafe_.frontend().lines_received(), 2u);
}

TEST_F(ProtocolTest, EchoTalksBackToBackend) {
  SendLines("%echo ping\n");
  EXPECT_EQ(ReadFromWafe(), "ping\n");
}

TEST_F(ProtocolTest, PartialLinesAreBuffered) {
  SendLines("%set partial ");
  std::string value;
  EXPECT_FALSE(wafe_.interp().GetVar("partial", &value));
  SendLines("done\n");
  ASSERT_TRUE(wafe_.interp().GetVar("partial", &value));
  EXPECT_EQ(value, "done");
}

TEST_F(ProtocolTest, MultipleCommandsInOneChunk) {
  SendLines("%set a 1\n%set b 2\n%set c 3\n");
  std::string value;
  EXPECT_TRUE(wafe_.interp().GetVar("c", &value));
  EXPECT_EQ(value, "3");
}

TEST_F(ProtocolTest, DownloadedProcRunsInFrontend) {
  // The paper: the application can download Tcl procedures into the
  // frontend, executed there without backend interaction.
  SendLines("%proc double {x} {return [expr $x+$x]}\n%set y [double 21]\n");
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("y", &value));
  EXPECT_EQ(value, "42");
}

TEST_F(ProtocolTest, CallbackSendsToBackend) {
  SendLines("%command hello topLevel callback {echo pressed %w}\n%realize\n");
  xtk::Widget* hello = wafe_.app().FindWidget("hello");
  ASSERT_NE(hello, nullptr);
  xsim::Point p = wafe_.app().display().RootPosition(hello->window());
  wafe_.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  wafe_.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(ReadFromWafe(), "pressed hello\n");
}

TEST_F(ProtocolTest, ClickAheadBuffering) {
  // The paper: "click ahead is possible due to buffering in the I/O
  // channels" — events fired while the backend is busy queue up in the
  // channel and none are lost.
  SendLines("%command b topLevel callback {echo clicked}\n%realize\n");
  xtk::Widget* b = wafe_.app().FindWidget("b");
  xsim::Point p = wafe_.app().display().RootPosition(b->window());
  for (int i = 0; i < 5; ++i) {
    wafe_.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    wafe_.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
  }
  wafe_.app().ProcessPending();  // the "user" clicked 5 times; backend busy
  std::string all;
  while (all.size() < 5 * 8) {
    std::string chunk = ReadFromWafe();
    if (chunk.empty()) {
      break;
    }
    all += chunk;
  }
  EXPECT_EQ(all, "clicked\nclicked\nclicked\nclicked\nclicked\n");
}

TEST_F(ProtocolTest, ErrorsDoNotKillTheSession) {
  SendLines("%this is not a command\n%set after_error 1\n");
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("after_error", &value));
  EXPECT_EQ(value, "1");
}

TEST_F(ProtocolTest, CustomPrefixCharacter) {
  Options options;
  options.prefix = '@';
  Wafe custom(options);
  int to_wafe[2];
  ASSERT_EQ(::pipe(to_wafe), 0);
  custom.frontend().AdoptBackend(to_wafe[0], -1);
  std::string data = "@set x custom\n%set y notacmd\n";
  ssize_t ignored = ::write(to_wafe[1], data.data(), data.size());
  (void)ignored;
  while (custom.app().RunOneIteration(false)) {
  }
  std::string value;
  EXPECT_TRUE(custom.interp().GetVar("x", &value));
  EXPECT_EQ(value, "custom");
  EXPECT_FALSE(custom.interp().GetVar("y", &value));
  ::close(to_wafe[1]);
}

TEST_F(ProtocolTest, CrlfLinesTolerated) {
  SendLines("%set crlf yes\r\n");
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("crlf", &value));
  EXPECT_EQ(value, "yes");
}

TEST_F(ProtocolTest, SendToApplicationCommand) {
  wafe_.Eval("sendToApplication {direct message}");
  EXPECT_EQ(ReadFromWafe(), "direct message\n");
}

}  // namespace
}  // namespace wafe
