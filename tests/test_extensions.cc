// Rdd drag-and-drop, the `time` command, resource-file loading, and the
// XENVIRONMENT startup merge.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "src/core/wafe.h"
#include "src/ext/rdd.h"

namespace {

class RddTest : public ::testing::Test {
 protected:
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_TRUE(r.ok()) << script << ": " << r.value;
    return r.value;
  }
  void Button2(const std::string& name, bool press) {
    xtk::Widget* w = wafe_.app().FindWidget(name);
    ASSERT_NE(w, nullptr);
    xsim::Point p = wafe_.app().display().RootPosition(w->window());
    if (press) {
      wafe_.app().display().InjectButtonPress(p.x + 2, p.y + 2, 2);
    } else {
      wafe_.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 2);
    }
    wafe_.app().ProcessPending();
  }
  wafe::Wafe wafe_;
};

TEST_F(RddTest, DragFromSourceToTarget) {
  Eval("form f topLevel");
  Eval("label src f label {drag me}");
  Eval("label dst f fromHoriz src label {drop here}");
  Eval("rddSource src {gV src label}");
  Eval("rddTarget dst {set dropped {%v from %f onto %w}}");
  Eval("realize");
  Button2("src", true);   // begin drag
  Button2("dst", false);  // drop
  EXPECT_EQ(Eval("set dropped"), "drag me from src onto dst");
}

TEST_F(RddTest, DropWithoutDragDoesNothing) {
  Eval("label dst topLevel");
  Eval("rddTarget dst {set dropped 1}");
  Eval("realize");
  Button2("dst", false);
  EXPECT_FALSE(wafe_.interp().VarExists("dropped"));
}

TEST_F(RddTest, CancelDropsTheDrag) {
  Eval("form f topLevel");
  Eval("label src f");
  Eval("label dst f fromHoriz src");
  Eval("rddSource src {gV src label}");
  Eval("rddTarget dst {set dropped 1}");
  Eval("realize");
  Button2("src", true);
  Eval("rddCancel");
  Button2("dst", false);
  EXPECT_FALSE(wafe_.interp().VarExists("dropped"));
}

TEST_F(RddTest, SourceValueEvaluatedAtDragTime) {
  Eval("form f topLevel");
  Eval("label src f label first");
  Eval("label dst f fromHoriz src");
  Eval("rddSource src {gV src label}");
  Eval("rddTarget dst {set dropped %v}");
  Eval("realize");
  Eval("sV src label second");
  Button2("src", true);
  Button2("dst", false);
  EXPECT_EQ(Eval("set dropped"), "second");
}

TEST_F(RddTest, UnitApiWithoutTcl) {
  std::string error;
  xtk::Widget* a = wafe_.app().CreateWidget("a", "Label", wafe_.top_level(), {}, true, &error);
  xtk::Widget* b = wafe_.app().CreateWidget("b", "Label", wafe_.top_level(), {}, true, &error);
  wext::DragAndDrop dnd(&wafe_.app());
  std::string got;
  dnd.RegisterSource(a, [] { return std::string("payload"); });
  dnd.RegisterTarget(b, [&got](xtk::Widget& source, const std::string& value) {
    got = value + " from " + source.name();
  });
  dnd.BeginDrag(*a);
  EXPECT_TRUE(dnd.dragging());
  dnd.Drop(*b);
  EXPECT_EQ(got, "payload from a");
  EXPECT_FALSE(dnd.dragging());
}

// --- time command ------------------------------------------------------------------------

TEST(TclTime, ReportsMicroseconds) {
  wtcl::Interp interp;
  wtcl::Result r = interp.Eval("time {set x 1} 100");
  ASSERT_TRUE(r.ok()) << r.value;
  EXPECT_NE(r.value.find("microseconds per iteration"), std::string::npos);
}

TEST(TclTime, PropagatesErrors) {
  wtcl::Interp interp;
  EXPECT_EQ(interp.Eval("time {error boom} 3").code, wtcl::Status::kError);
  EXPECT_EQ(interp.Eval("time {set x 1} notanumber").code, wtcl::Status::kError);
}

// --- Resource files -----------------------------------------------------------------------

TEST(ResourceFiles, LoadResourcesCommand) {
  std::string path = "/tmp/wafe_test_resources.ad";
  {
    std::ofstream f(path);
    f << "! comment line\n"
         "*fileLabel.label: FromFile\n"
         "*fileLabel.foreground: blue\n";
  }
  wafe::Wafe app;
  EXPECT_EQ(app.Eval("loadResources " + path).value, "2");
  app.Eval("label fileLabel topLevel");
  EXPECT_EQ(app.app().FindWidget("fileLabel")->GetString("label"), "FromFile");
  ::unlink(path.c_str());
  EXPECT_EQ(app.Eval("loadResources /no/such/file.ad").code, wtcl::Status::kError);
}

TEST(ResourceFiles, XEnvironmentMergedAtStartup) {
  std::string path = "/tmp/wafe_test_xenv.ad";
  {
    std::ofstream f(path);
    f << "*envLabel.label: FromEnv\n";
  }
  ::setenv("XENVIRONMENT", path.c_str(), 1);
  std::string script = "/tmp/wafe_test_xenv.wafe";
  {
    std::ofstream f(script);
    f << "quit\n";
  }
  wafe::Wafe app;
  const char* argv[] = {"wafe", "--f", script.c_str()};
  // Main applies XENVIRONMENT before dispatching to the (trivial) script.
  app.Main(3, argv);
  ::unlink(script.c_str());
  app.Eval("label envLabel topLevel");
  EXPECT_EQ(app.app().FindWidget("envLabel")->GetString("label"), "FromEnv");
  ::unsetenv("XENVIRONMENT");
  ::unlink(path.c_str());
}

}  // namespace
