// string index/range/compare over the shared index grammar (end, end±N,
// out-of-range, malformed), including values whose reps are shared between
// variables and shimmered between list and string interpretations — the
// cached rep must never leak a stale answer into a string operation.
#include <gtest/gtest.h>

#include "src/tcl/interp.h"

namespace wtcl {
namespace {

std::string Eval(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
  return r.value;
}

std::string EvalError(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_EQ(r.code, Status::kError) << "script: " << script;
  return r.value;
}

TEST(TclStringIndex, EndForms) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string index abcdef end"), "f");
  EXPECT_EQ(Eval(interp, "string index abcdef end-0"), "f");
  EXPECT_EQ(Eval(interp, "string index abcdef end-2"), "d");
  EXPECT_EQ(Eval(interp, "string index abcdef end-5"), "a");
  // end+N walks past the last character: out of range, empty.
  EXPECT_EQ(Eval(interp, "string index abcdef end+1"), "");
  EXPECT_EQ(Eval(interp, "string index abcdef end-6"), "");
}

TEST(TclStringIndex, OutOfRangeIsEmpty) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string index abc 100"), "");
  EXPECT_EQ(Eval(interp, "string index abc -1"), "");
  EXPECT_EQ(Eval(interp, "string index {} 0"), "");
}

TEST(TclStringIndex, AcceptsIntegerForms) {
  Interp interp;
  // The shared index parser takes hex/octal and padded spellings.
  EXPECT_EQ(Eval(interp, "string index abcdef 0x2"), "c");
  EXPECT_EQ(Eval(interp, "string index abcdef { 1 }"), "b");
}

TEST(TclStringIndex, BadIndexMessage) {
  Interp interp;
  EXPECT_EQ(EvalError(interp, "string index abc bogus"),
            "bad index \"bogus\": must be integer?[+-]integer? or "
            "end?[+-]integer?");
  EXPECT_EQ(EvalError(interp, "string index abc 1.5"),
            "bad index \"1.5\": must be integer?[+-]integer? or "
            "end?[+-]integer?");
  EXPECT_EQ(EvalError(interp, "string range abc 0 end-x"),
            "bad index \"end-x\": must be integer?[+-]integer? or "
            "end?[+-]integer?");
}

TEST(TclStringRange, EndFormsAndClamping) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string range abcdef 1 end-1"), "bcde");
  EXPECT_EQ(Eval(interp, "string range abcdef end-3 end"), "cdef");
  EXPECT_EQ(Eval(interp, "string range abcdef -5 100"), "abcdef");
  EXPECT_EQ(Eval(interp, "string range abcdef end-1 end-3"), "");
  EXPECT_EQ(Eval(interp, "string range abcdef end end+5"), "f");
}

TEST(TclStringEdge, SharedValueShimmerListThenString) {
  Interp interp;
  // The variable's rep is first parsed as a list (lindex), then the same
  // shared rep serves string operations; both views must stay consistent,
  // for the original and for a rep-sharing copy.
  Eval(interp, "set s {a b c}");
  Eval(interp, "set keep $s");
  EXPECT_EQ(Eval(interp, "lindex $s 1"), "b");
  EXPECT_EQ(Eval(interp, "string index $s end"), "c");
  EXPECT_EQ(Eval(interp, "string range $s 2 end-2"), "b");
  EXPECT_EQ(Eval(interp, "string index $keep 0"), "a");
  // Mutating one variable must not disturb the copy's string view.
  Eval(interp, "lappend s d");
  EXPECT_EQ(Eval(interp, "string index $s end"), "d");
  EXPECT_EQ(Eval(interp, "set keep"), "a b c");
  EXPECT_EQ(Eval(interp, "string index $keep end"), "c");
}

TEST(TclStringEdge, NumericRepThenStringIndex) {
  Interp interp;
  // An integer-classified value ("0x2f" cached as 47 by expr) indexed as a
  // string must use the original spelling, not a formatted rep.
  Eval(interp, "set n 0x2f");
  EXPECT_EQ(Eval(interp, "expr {$n + 1}"), "48");
  EXPECT_EQ(Eval(interp, "string index $n 1"), "x");
  EXPECT_EQ(Eval(interp, "string range $n end-1 end"), "2f");
}

TEST(TclStringCompare, OrderingAndSharedReps) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string compare abc abd"), "-1");
  EXPECT_EQ(Eval(interp, "string compare abd abc"), "1");
  EXPECT_EQ(Eval(interp, "string compare abc abc"), "0");
  // Numeric-looking operands compare as strings, even when one of them has
  // a cached integer rep from arithmetic.
  Eval(interp, "set a 10");
  Eval(interp, "expr {$a * 1}");
  EXPECT_EQ(Eval(interp, "string compare $a 9"), "-1");
  EXPECT_EQ(Eval(interp, "string compare $a 10"), "0");
}

TEST(TclStringEdge, IndexIntoProcSharedArgument) {
  Interp interp;
  // Arguments are bound by rep share; indexing inside the proc must not
  // corrupt the caller's value.
  Eval(interp, "proc pick {s i} {string index $s $i}");
  Eval(interp, "set v {x y z}");
  EXPECT_EQ(Eval(interp, "pick $v end"), "z");
  EXPECT_EQ(Eval(interp, "lindex $v 1"), "y");
  EXPECT_EQ(Eval(interp, "set v"), "x y z");
}

}  // namespace
}  // namespace wtcl
