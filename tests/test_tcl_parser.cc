// Parser-level semantics: word splitting, quoting, substitution rules.
#include <gtest/gtest.h>

#include "src/tcl/interp.h"

namespace wtcl {
namespace {

std::string Eval(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
  return r.value;
}

TEST(TclParser, SimpleCommand) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x hello"), "hello");
  EXPECT_EQ(Eval(interp, "set x"), "hello");
}

TEST(TclParser, SemicolonSeparatesCommands) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x 1; set y 2; set x"), "1");
}

TEST(TclParser, NewlineSeparatesCommands) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x 1\nset y 2\nset y"), "2");
}

TEST(TclParser, BracesPreventSubstitution) {
  Interp interp;
  Eval(interp, "set x world");
  EXPECT_EQ(Eval(interp, "set y {$x}"), "$x");
}

TEST(TclParser, QuotesAllowSubstitution) {
  Interp interp;
  Eval(interp, "set x world");
  EXPECT_EQ(Eval(interp, "set y \"hello $x\""), "hello world");
}

TEST(TclParser, NestedBraces) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x {a {b c} d}"), "a {b c} d");
}

TEST(TclParser, CommandSubstitution) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x [set y 42]"), "42");
}

TEST(TclParser, NestedCommandSubstitution) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x [set y [set z inner]]"), "inner");
}

TEST(TclParser, CommandSubstitutionInsideQuotes) {
  Interp interp;
  Eval(interp, "set n 3");
  EXPECT_EQ(Eval(interp, "set x \"n is [set n]\""), "n is 3");
}

TEST(TclParser, VariableSubstitutionForms) {
  Interp interp;
  Eval(interp, "set abc 1");
  EXPECT_EQ(Eval(interp, "set r $abc"), "1");
  EXPECT_EQ(Eval(interp, "set r ${abc}x"), "1x");
}

TEST(TclParser, ArrayElementSubstitution) {
  Interp interp;
  Eval(interp, "set a(one) 1");
  Eval(interp, "set i one");
  EXPECT_EQ(Eval(interp, "set r $a(one)"), "1");
  EXPECT_EQ(Eval(interp, "set r $a($i)"), "1");
}

TEST(TclParser, BackslashEscapes) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x a\\ b"), "a b");
  EXPECT_EQ(Eval(interp, "set x \"tab\\there\""), "tab\there");
  EXPECT_EQ(Eval(interp, "set x \"nl\\n\""), "nl\n");
  EXPECT_EQ(Eval(interp, "set x \\$notvar"), "$notvar");
}

TEST(TclParser, BackslashNewlineContinuation) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x \\\n 5"), "5");
}

TEST(TclParser, CommentsAtCommandStart) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "# a comment\nset x 7"), "7");
}

TEST(TclParser, HashInsideWordIsNotComment) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x a#b"), "a#b");
}

TEST(TclParser, UnknownCommandError) {
  Interp interp;
  Result r = interp.Eval("definitely_not_a_command");
  EXPECT_EQ(r.code, Status::kError);
  EXPECT_NE(r.value.find("invalid command name"), std::string::npos);
}

TEST(TclParser, UnsetVariableError) {
  Interp interp;
  Result r = interp.Eval("set x $nope");
  EXPECT_EQ(r.code, Status::kError);
  EXPECT_NE(r.value.find("no such variable"), std::string::npos);
}

TEST(TclParser, MissingCloseBrace) {
  Interp interp;
  Result r = interp.Eval("set x {unclosed");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclParser, MissingCloseQuote) {
  Interp interp;
  Result r = interp.Eval("set x \"unclosed");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclParser, MissingCloseBracket) {
  Interp interp;
  Result r = interp.Eval("set x [set y 1");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclParser, ExtraCharsAfterBrace) {
  Interp interp;
  Result r = interp.Eval("set x {a}b");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclParser, DollarWithoutNameIsLiteral) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x a$"), "a$");
}

TEST(TclParser, BracketInsideBracesIsLiteral) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x {[not a command]}"), "[not a command]");
}

TEST(TclParser, EmptyScriptIsOk) {
  Interp interp;
  EXPECT_EQ(Eval(interp, ""), "");
  EXPECT_EQ(Eval(interp, "   \n \t ;;; \n"), "");
}

TEST(TclParser, SubstituteWordPublicApi) {
  Interp interp;
  interp.SetVar("who", "world");
  Result r = interp.SubstituteWord("hello $who [set who]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, "hello world world");
}

// --- List utilities -----------------------------------------------------------

TEST(TclList, SplitSimple) {
  std::vector<std::string> out;
  ASSERT_TRUE(SplitList("a b c", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[2], "c");
}

TEST(TclList, SplitBraced) {
  std::vector<std::string> out;
  ASSERT_TRUE(SplitList("a {b c} d", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], "b c");
}

TEST(TclList, SplitQuoted) {
  std::vector<std::string> out;
  ASSERT_TRUE(SplitList("\"a b\" c", &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "a b");
}

TEST(TclList, SplitUnbalancedFails) {
  std::vector<std::string> out;
  EXPECT_FALSE(SplitList("{a b", &out));
}

TEST(TclList, QuoteEmpty) { EXPECT_EQ(QuoteListElement(""), "{}"); }

TEST(TclList, QuoteSpace) { EXPECT_EQ(QuoteListElement("a b"), "{a b}"); }

TEST(TclList, QuotePlain) { EXPECT_EQ(QuoteListElement("abc"), "abc"); }

// Round-trip property: Merge then Split recovers the elements exactly.
class ListRoundTrip : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(ListRoundTrip, MergeSplitIdentity) {
  const auto& elements = GetParam();
  std::string merged = MergeList(elements);
  std::vector<std::string> recovered;
  ASSERT_TRUE(SplitList(merged, &recovered)) << merged;
  EXPECT_EQ(recovered, elements) << merged;
}

INSTANTIATE_TEST_SUITE_P(
    Various, ListRoundTrip,
    ::testing::Values(
        std::vector<std::string>{},
        std::vector<std::string>{"a"},
        std::vector<std::string>{"a", "b", "c"},
        std::vector<std::string>{"with space", "plain"},
        std::vector<std::string>{""},
        std::vector<std::string>{"", "", ""},
        std::vector<std::string>{"{braced}", "half{open"},
        std::vector<std::string>{"back\\slash"},
        std::vector<std::string>{"$dollar", "[bracket]", "semi;colon"},
        std::vector<std::string>{"new\nline", "tab\ttab"},
        std::vector<std::string>{"quote\"quote"},
        std::vector<std::string>{"}lead", "trail{"}));

// Glob matching.
struct GlobCase {
  const char* pattern;
  const char* subject;
  bool expected;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Match) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(GlobMatch(c.pattern, c.subject), c.expected)
      << c.pattern << " vs " << c.subject;
}

INSTANTIATE_TEST_SUITE_P(
    Various, GlobTest,
    ::testing::Values(GlobCase{"*", "anything", true}, GlobCase{"*", "", true},
                      GlobCase{"a*", "abc", true}, GlobCase{"a*", "bac", false},
                      GlobCase{"*c", "abc", true}, GlobCase{"a?c", "abc", true},
                      GlobCase{"a?c", "ac", false}, GlobCase{"[a-c]x", "bx", true},
                      GlobCase{"[a-c]x", "dx", false}, GlobCase{"a*b*c", "aXbYc", true},
                      GlobCase{"a*b*c", "aXbY", false}, GlobCase{"exact", "exact", true},
                      GlobCase{"exact", "exacts", false}, GlobCase{"*.cc", "file.cc", true},
                      GlobCase{"\\*", "*", true}, GlobCase{"\\*", "x", false}));

}  // namespace
}  // namespace wtcl
