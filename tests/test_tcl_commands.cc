// Built-in command semantics: control flow, procs, scoping, strings, lists,
// arrays, error handling.
#include <gtest/gtest.h>

#include "src/tcl/interp.h"

namespace wtcl {
namespace {

std::string Eval(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
  return r.value;
}

// --- Control flow --------------------------------------------------------------

TEST(TclControl, IfTrueBranch) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "if {1 < 2} {set x yes} else {set x no}"), "yes");
}

TEST(TclControl, IfElseBranch) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "if {1 > 2} {set x yes} else {set x no}"), "no");
}

TEST(TclControl, IfElseif) {
  Interp interp;
  Eval(interp, "set v 2");
  EXPECT_EQ(Eval(interp,
                 "if {$v == 1} {set r one} elseif {$v == 2} {set r two} else {set r many}"),
            "two");
}

TEST(TclControl, IfWithThenKeyword) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "if 1 then {set x ok}"), "ok");
}

TEST(TclControl, WhileLoop) {
  Interp interp;
  Eval(interp, "set i 0; set sum 0");
  Eval(interp, "while {$i < 5} {incr sum $i; incr i}");
  EXPECT_EQ(Eval(interp, "set sum"), "10");
}

TEST(TclControl, WhileBreak) {
  Interp interp;
  Eval(interp, "set i 0");
  Eval(interp, "while 1 {incr i; if {$i >= 3} break}");
  EXPECT_EQ(Eval(interp, "set i"), "3");
}

TEST(TclControl, WhileContinue) {
  Interp interp;
  Eval(interp, "set i 0; set even 0");
  Eval(interp, "while {$i < 10} {incr i; if {$i % 2} continue; incr even}");
  EXPECT_EQ(Eval(interp, "set even"), "5");
}

TEST(TclControl, ForLoop) {
  Interp interp;
  Eval(interp, "set sum 0");
  Eval(interp, "for {set i 1} {$i <= 4} {incr i} {incr sum $i}");
  EXPECT_EQ(Eval(interp, "set sum"), "10");
}

TEST(TclControl, ForeachLoop) {
  Interp interp;
  Eval(interp, "set out {}");
  Eval(interp, "foreach w {a b c} {append out $w$w}");
  EXPECT_EQ(Eval(interp, "set out"), "aabbcc");
}

TEST(TclControl, ForeachBreak) {
  Interp interp;
  Eval(interp, "set out {}");
  Eval(interp, "foreach w {a b c d} {if {$w == \"c\"} break; append out $w}");
  EXPECT_EQ(Eval(interp, "set out"), "ab");
}

TEST(TclControl, SwitchExact) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "switch b {a {set r 1} b {set r 2} default {set r 3}}"), "2");
}

TEST(TclControl, SwitchDefault) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "switch zz {a {set r 1} default {set r dflt}}"), "dflt");
}

TEST(TclControl, SwitchGlob) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "switch -glob ab* {a {set r 1} ab\\* {set r glob}}"), "glob");
}

TEST(TclControl, SwitchFallthrough) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "switch a {a - b {set r shared} c {set r other}}"), "shared");
}

// --- Procs and scoping ----------------------------------------------------------

TEST(TclProc, SimpleProc) {
  Interp interp;
  Eval(interp, "proc double {x} {return [expr $x * 2]}");
  EXPECT_EQ(Eval(interp, "double 21"), "42");
}

TEST(TclProc, DefaultArguments) {
  Interp interp;
  Eval(interp, "proc greet {{name world}} {return hello-$name}");
  EXPECT_EQ(Eval(interp, "greet"), "hello-world");
  EXPECT_EQ(Eval(interp, "greet there"), "hello-there");
}

TEST(TclProc, VarArgs) {
  Interp interp;
  Eval(interp, "proc count {args} {return [llength $args]}");
  EXPECT_EQ(Eval(interp, "count a b c d"), "4");
  EXPECT_EQ(Eval(interp, "count"), "0");
}

TEST(TclProc, TooFewArgsError) {
  Interp interp;
  Eval(interp, "proc f {a b} {return $a$b}");
  Result r = interp.Eval("f onearg");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclProc, TooManyArgsError) {
  Interp interp;
  Eval(interp, "proc f {a} {return $a}");
  Result r = interp.Eval("f 1 2");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclProc, LocalScope) {
  Interp interp;
  Eval(interp, "set x global");
  Eval(interp, "proc touch {} {set x local; return $x}");
  EXPECT_EQ(Eval(interp, "touch"), "local");
  EXPECT_EQ(Eval(interp, "set x"), "global");
}

TEST(TclProc, GlobalCommand) {
  Interp interp;
  Eval(interp, "set counter 0");
  Eval(interp, "proc bump {} {global counter; incr counter}");
  Eval(interp, "bump; bump; bump");
  EXPECT_EQ(Eval(interp, "set counter"), "3");
}

TEST(TclProc, UpvarReadsAndWritesCaller) {
  Interp interp;
  Eval(interp, "proc addone {varname} {upvar $varname v; incr v}");
  Eval(interp, "set n 9");
  Eval(interp, "addone n");
  EXPECT_EQ(Eval(interp, "set n"), "10");
}

TEST(TclProc, UplevelEvaluatesInCaller) {
  Interp interp;
  Eval(interp, "proc setter {} {uplevel {set made_here 1}}");
  Eval(interp, "proc outer {} {setter; return [set made_here]}");
  EXPECT_EQ(Eval(interp, "outer"), "1");
}

TEST(TclProc, RecursiveProc) {
  Interp interp;
  Eval(interp, "proc fact {n} {if {$n <= 1} {return 1}; expr {$n * [fact [expr $n-1]]}}");
  EXPECT_EQ(Eval(interp, "fact 6"), "720");
}

TEST(TclProc, InfoBodyAndArgs) {
  Interp interp;
  Eval(interp, "proc p {a b} {return $a}");
  EXPECT_EQ(Eval(interp, "info args p"), "a b");
  EXPECT_EQ(Eval(interp, "info body p"), "return $a");
}

TEST(TclProc, RenameProc) {
  Interp interp;
  Eval(interp, "proc orig {} {return hi}");
  Eval(interp, "rename orig fresh");
  EXPECT_EQ(Eval(interp, "fresh"), "hi");
  Result r = interp.Eval("orig");
  EXPECT_EQ(r.code, Status::kError);
}

TEST(TclProc, InfiniteRecursionCaught) {
  Interp interp;
  interp.set_max_nesting(50);
  Eval(interp, "proc loop {} {loop}");
  Result r = interp.Eval("loop");
  EXPECT_EQ(r.code, Status::kError);
}

// --- Error handling --------------------------------------------------------------

TEST(TclError, CatchReturnsCode) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "catch {error boom} msg"), "1");
  EXPECT_EQ(Eval(interp, "set msg"), "boom");
}

TEST(TclError, CatchOkIsZero) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "catch {set x fine} msg"), "0");
  EXPECT_EQ(Eval(interp, "set msg"), "fine");
}

TEST(TclError, ErrorInfoMaintained) {
  Interp interp;
  interp.Eval("proc failing {} {error deep}");
  Result r = interp.Eval("failing");
  EXPECT_EQ(r.code, Status::kError);
  std::string info;
  ASSERT_TRUE(interp.GetGlobalVar("errorInfo", &info));
  EXPECT_NE(info.find("deep"), std::string::npos);
}

TEST(TclError, BreakOutsideLoop) {
  Interp interp;
  Eval(interp, "proc f {} {break}");
  Result r = interp.Eval("f");
  EXPECT_EQ(r.code, Status::kError);
}

// --- Strings -----------------------------------------------------------------------

TEST(TclString, Length) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string length hello"), "5");
  EXPECT_EQ(Eval(interp, "string length {}"), "0");
}

TEST(TclString, Case) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string tolower HeLLo"), "hello");
  EXPECT_EQ(Eval(interp, "string toupper HeLLo"), "HELLO");
}

TEST(TclString, IndexAndRange) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string index abcdef 2"), "c");
  EXPECT_EQ(Eval(interp, "string index abcdef 99"), "");
  EXPECT_EQ(Eval(interp, "string range abcdef 1 3"), "bcd");
  EXPECT_EQ(Eval(interp, "string range abcdef 3 end"), "def");
}

TEST(TclString, Compare) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string compare apple banana"), "-1");
  EXPECT_EQ(Eval(interp, "string compare same same"), "0");
  EXPECT_EQ(Eval(interp, "string compare zoo apple"), "1");
}

TEST(TclString, Match) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string match *.tcl script.tcl"), "1");
  EXPECT_EQ(Eval(interp, "string match *.tcl script.cc"), "0");
}

TEST(TclString, FirstLast) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string first b abcabc"), "1");
  EXPECT_EQ(Eval(interp, "string last b abcabc"), "4");
  EXPECT_EQ(Eval(interp, "string first z abc"), "-1");
}

TEST(TclString, Trim) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "string trim {  padded  }"), "padded");
  EXPECT_EQ(Eval(interp, "string trimleft {  padded  }"), "padded  ");
  EXPECT_EQ(Eval(interp, "string trimright xxhixx x"), "xxhi");
}

TEST(TclString, Append) {
  Interp interp;
  Eval(interp, "set s start");
  Eval(interp, "append s -mid -end");
  EXPECT_EQ(Eval(interp, "set s"), "start-mid-end");
}

TEST(TclString, Format) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "format %d 42"), "42");
  EXPECT_EQ(Eval(interp, "format %5d 42"), "   42");
  EXPECT_EQ(Eval(interp, "format %-5d| 42"), "42   |");
  EXPECT_EQ(Eval(interp, "format %x 255"), "ff");
  EXPECT_EQ(Eval(interp, "format %05.1f 3.14159"), "003.1");
  EXPECT_EQ(Eval(interp, "format {%s and %s} salt pepper"), "salt and pepper");
  EXPECT_EQ(Eval(interp, "format %c 65"), "A");
  EXPECT_EQ(Eval(interp, "format %%"), "%");
}

TEST(TclString, FormatErrors) {
  Interp interp;
  EXPECT_EQ(interp.Eval("format %d notanumber").code, Status::kError);
  EXPECT_EQ(interp.Eval("format %d").code, Status::kError);
  EXPECT_EQ(interp.Eval("format %q 1").code, Status::kError);
}

TEST(TclString, Scan) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "scan {12 monkeys} {%d %s} n what"), "2");
  EXPECT_EQ(Eval(interp, "set n"), "12");
  EXPECT_EQ(Eval(interp, "set what"), "monkeys");
}

// --- Lists --------------------------------------------------------------------------

TEST(TclListCmd, ListQuotes) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "list a {b c} d"), "a {b c} d");
  EXPECT_EQ(Eval(interp, "list"), "");
}

TEST(TclListCmd, Lindex) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lindex {a b c} 1"), "b");
  EXPECT_EQ(Eval(interp, "lindex {a b c} end"), "c");
  EXPECT_EQ(Eval(interp, "lindex {a b c} 9"), "");
}

TEST(TclListCmd, Llength) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "llength {a b {c d}}"), "3");
  EXPECT_EQ(Eval(interp, "llength {}"), "0");
}

TEST(TclListCmd, Lrange) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(Eval(interp, "lrange {a b c} 1 end"), "b c");
}

TEST(TclListCmd, Lappend) {
  Interp interp;
  Eval(interp, "set l {a}");
  Eval(interp, "lappend l b {c d}");
  EXPECT_EQ(Eval(interp, "set l"), "a b {c d}");
  EXPECT_EQ(Eval(interp, "llength $l"), "3");
}

TEST(TclListCmd, LappendCreates) {
  Interp interp;
  Eval(interp, "lappend fresh x");
  EXPECT_EQ(Eval(interp, "set fresh"), "x");
}

TEST(TclListCmd, Linsert) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "linsert {a c} 1 b"), "a b c");
  EXPECT_EQ(Eval(interp, "linsert {a b} 0 start"), "start a b");
  // "end" names the slot after the last element: linsert appends.
  EXPECT_EQ(Eval(interp, "linsert {a b} end z"), "a b z");
  EXPECT_EQ(Eval(interp, "linsert {a b} end-1 z"), "a z b");
}

TEST(TclListCmd, Lreplace) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lreplace {a b c d} 1 2 X"), "a X d");
  EXPECT_EQ(Eval(interp, "lreplace {a b c} 0 0"), "b c");
}

TEST(TclListCmd, Lsearch) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lsearch {a b c} b"), "1");
  EXPECT_EQ(Eval(interp, "lsearch {a b c} z"), "-1");
  EXPECT_EQ(Eval(interp, "lsearch -glob {foo bar baz} b*"), "1");
  EXPECT_EQ(Eval(interp, "lsearch -exact {foo b* baz} b*"), "1");
}

TEST(TclListCmd, Lsort) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lsort {pear apple orange}"), "apple orange pear");
  EXPECT_EQ(Eval(interp, "lsort -integer {10 9 100}"), "9 10 100");
  EXPECT_EQ(Eval(interp, "lsort -decreasing {a c b}"), "c b a");
}

TEST(TclListCmd, ConcatJoinSplit) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "concat {a b} {c d}"), "a b c d");
  EXPECT_EQ(Eval(interp, "join {a b c} -"), "a-b-c");
  EXPECT_EQ(Eval(interp, "split a:b:c :"), "a b c");
  EXPECT_EQ(Eval(interp, "split abc {}"), "a b c");
}

// --- Arrays --------------------------------------------------------------------------

TEST(TclArray, SetAndGetElements) {
  Interp interp;
  Eval(interp, "set a(x) 1; set a(y) 2");
  EXPECT_EQ(Eval(interp, "set a(x)"), "1");
  EXPECT_EQ(Eval(interp, "array size a"), "2");
  EXPECT_EQ(Eval(interp, "lsort [array names a]"), "x y");
}

TEST(TclArray, ArrayExists) {
  Interp interp;
  Eval(interp, "set a(k) v");
  EXPECT_EQ(Eval(interp, "array exists a"), "1");
  EXPECT_EQ(Eval(interp, "array exists nope"), "0");
  Eval(interp, "set scalar 5");
  EXPECT_EQ(Eval(interp, "array exists scalar"), "0");
}

TEST(TclArray, ArraySetGet) {
  Interp interp;
  Eval(interp, "array set cfg {width 100 height 50}");
  EXPECT_EQ(Eval(interp, "set cfg(width)"), "100");
  EXPECT_EQ(Eval(interp, "set cfg(height)"), "50");
}

TEST(TclArray, UnsetElement) {
  Interp interp;
  Eval(interp, "set a(x) 1; set a(y) 2");
  Eval(interp, "unset a(x)");
  EXPECT_EQ(Eval(interp, "array size a"), "1");
  EXPECT_EQ(Eval(interp, "info exists a(x)"), "0");
}

TEST(TclArray, ScalarArrayCollision) {
  Interp interp;
  Eval(interp, "set s scalarvalue");
  Result r = interp.Eval("set s(elem) 1");
  EXPECT_EQ(r.code, Status::kError);
}

// --- Misc ----------------------------------------------------------------------------

TEST(TclMisc, InfoExists) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "info exists nothere"), "0");
  Eval(interp, "set here 1");
  EXPECT_EQ(Eval(interp, "info exists here"), "1");
}

TEST(TclMisc, InfoCommandsGlob) {
  Interp interp;
  std::string cmds = Eval(interp, "info commands l*");
  EXPECT_NE(cmds.find("lindex"), std::string::npos);
  EXPECT_EQ(cmds.find("set"), std::string::npos);
}

TEST(TclMisc, InfoLevel) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "info level"), "0");
  Eval(interp, "proc lvl {} {return [info level]}");
  EXPECT_EQ(Eval(interp, "lvl"), "1");
}

TEST(TclMisc, EvalConcatenates) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "eval set joined ok"), "ok");
  EXPECT_EQ(Eval(interp, "eval {set x 5; set x}"), "5");
}

TEST(TclMisc, OutputSink) {
  Interp interp;
  std::string captured;
  interp.set_output([&captured](const std::string& text) { captured += text; });
  Eval(interp, "echo hello world");
  EXPECT_EQ(captured, "hello world\n");
  captured.clear();
  Eval(interp, "puts -nonewline raw");
  EXPECT_EQ(captured, "raw");
}

TEST(TclMisc, CommandCountAdvances) {
  Interp interp;
  std::size_t before = interp.CommandCount();
  Eval(interp, "set a 1; set b 2");
  EXPECT_GE(interp.CommandCount(), before + 2);
}

}  // namespace
}  // namespace wtcl
