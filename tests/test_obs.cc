// Observability layer (src/obs): counters/gauges/histograms behind the
// WAFE_METRICS gate, the trace ring and its Chrome trace_event export, the
// metrics/traceDump commands, and end-to-end instrumentation across the
// tcl, xt, and comm layers.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"

namespace wafe {
namespace {

// Every test starts from a clean slate and leaves observability off so the
// rest of the suite keeps running on the disabled fast path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wobs::SetMetricsEnabled(true);
    wobs::Registry::Instance().ResetMetrics();
    wobs::Registry::Instance().ring().Clear();
  }

  void TearDown() override {
    wobs::SetTraceEnabled(false);
    wobs::SetMetricsEnabled(false);
    wobs::Registry::Instance().ring().SetCapacity(wobs::TraceRing::kDefaultCapacity);
  }

  std::string Eval(Wafe& wafe, const std::string& script) {
    wtcl::Result r = wafe.Eval(script);
    EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
    return r.value;
  }

  std::uint64_t Metric(const std::string& name) {
    std::uint64_t value = 0;
    EXPECT_TRUE(wobs::Registry::Instance().GetMetric(name, &value)) << name;
    return value;
  }

  void Click(Wafe& wafe, xtk::Widget* w) {
    xsim::Point p = wafe.app().display().RootPosition(w->window());
    wafe.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    wafe.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    wafe.app().ProcessPending();
  }
};

// --- Instruments ------------------------------------------------------------------

TEST_F(ObsTest, CountersGatedOnEnableFlag) {
  // Instruments register raw pointers with the never-destroyed registry, so
  // even test instruments need static storage duration.
  static wobs::Counter counter("test.obs.gated");
  counter.Increment();
  EXPECT_EQ(counter.Get(), 1u);
  wobs::SetMetricsEnabled(false);
  counter.Increment(10);
  EXPECT_EQ(counter.Get(), 1u);  // disabled increments are dropped
  wobs::SetMetricsEnabled(true);
  counter.Increment(5);
  EXPECT_EQ(counter.Get(), 6u);
}

TEST_F(ObsTest, MaxGaugeKeepsHighWaterMark) {
  static wobs::MaxGauge gauge("test.obs.gauge");
  gauge.Observe(3);
  gauge.Observe(17);
  gauge.Observe(5);
  EXPECT_EQ(gauge.Get(), 17u);
  gauge.Reset();
  EXPECT_EQ(gauge.Get(), 0u);
}

TEST_F(ObsTest, HistogramRecordsAndQuantiles) {
  static wobs::Histogram hist("test.obs.hist");
  for (int i = 0; i < 100; ++i) {
    hist.Record(1000);  // 1µs
  }
  hist.Record(1u << 20);  // ~1ms outlier
  EXPECT_EQ(hist.Count(), 101u);
  EXPECT_GE(hist.MaxNs(), 1u << 20);
  // p50 sits in the 1µs bucket; the bucket upper bound is < the outlier.
  EXPECT_LT(hist.ApproxQuantileNs(0.5), 1u << 20);
  EXPECT_GE(hist.ApproxQuantileNs(0.999), 1u << 20);
}

TEST_F(ObsTest, TraceRingWrapsAndCountsDrops) {
  wobs::TraceRing& ring = wobs::Registry::Instance().ring();
  ring.SetCapacity(8);
  wobs::SetTraceEnabled(true);
  for (int i = 0; i < 20; ++i) {
    wobs::TraceInstant("test", "tick");
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  // Snapshot returns oldest-first; all survived events are the newest 8.
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

// --- Tcl command surface ------------------------------------------------------------

TEST_F(ObsTest, MetricsGetAndResetViaCommand) {
  Wafe wafe;
  Eval(wafe, "set x 1");
  Eval(wafe, "set y 2");
  // The get itself is a command, so the count includes it.
  std::uint64_t commands = std::stoull(Eval(wafe, "metrics get tcl.commands"));
  EXPECT_GE(commands, 3u);
  Eval(wafe, "metrics reset");
  std::uint64_t after = std::stoull(Eval(wafe, "metrics get tcl.commands"));
  EXPECT_LT(after, commands);
  EXPECT_GE(after, 1u);  // the get after the reset counted itself
}

TEST_F(ObsTest, MetricsDumpListsSections) {
  Wafe wafe;
  Eval(wafe, "set x 1");
  std::string dump = Eval(wafe, "metrics dump");
  EXPECT_NE(dump.find("== counters =="), std::string::npos);
  EXPECT_NE(dump.find("tcl.commands"), std::string::npos);
  EXPECT_NE(dump.find("== histograms (ns) =="), std::string::npos);
}

TEST_F(ObsTest, MetricsRejectsUnknownNamesAndSubcommands) {
  Wafe wafe;
  EXPECT_EQ(wafe.Eval("metrics get no.such.metric").code, wtcl::Status::kError);
  EXPECT_EQ(wafe.Eval("metrics bogus").code, wtcl::Status::kError);
  EXPECT_EQ(wafe.Eval("metrics get").code, wtcl::Status::kError);
}

TEST_F(ObsTest, MetricsEnableDisableTogglesGate) {
  Wafe wafe;
  Eval(wafe, "metrics disable");
  EXPECT_FALSE(wobs::MetricsEnabled());
  Eval(wafe, "metrics enable");
  EXPECT_TRUE(wobs::MetricsEnabled());
}

TEST_F(ObsTest, TraceDumpEmitsWellFormedChromeJson) {
  Wafe wafe;
  Eval(wafe, "traceEnable");
  Eval(wafe, "set x 7");
  Eval(wafe, "expr {$x * 6}");
  std::string json = Eval(wafe, "traceDump - json");
  Eval(wafe, "traceDisable");
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 60);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tcl\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Structural sanity: braces and brackets balance.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, TraceDumpWritesFileAndText) {
  Wafe wafe;
  Eval(wafe, "traceEnable");
  Eval(wafe, "set x 1");
  std::string path = ::testing::TempDir() + "obs_trace.json";
  std::string count = Eval(wafe, "traceDump " + path);
  EXPECT_GT(std::stoull(count), 0u);
  EXPECT_EQ(::access(path.c_str(), R_OK), 0);
  std::string text = Eval(wafe, "traceDump - text");
  EXPECT_NE(text.find("tcl"), std::string::npos);
  EXPECT_EQ(wafe.Eval("traceDump - yaml").code, wtcl::Status::kError);
}

// --- End-to-end instrumentation -----------------------------------------------------

TEST_F(ObsTest, ScriptedClickIncrementsXtAndXsimCounters) {
  Wafe wafe;
  Eval(wafe, "command hello topLevel callback {set fired 1}");
  Eval(wafe, "realize");
  std::uint64_t callbacks_before = Metric("xt.callbacks.fired");
  std::uint64_t enqueued_before = Metric("xsim.events.enqueued");
  std::uint64_t dispatched_before = Metric("xt.events.dispatched");
  Click(wafe, wafe.app().FindWidget("hello"));
  EXPECT_EQ(Eval(wafe, "set fired"), "1");
  EXPECT_GT(Metric("xt.callbacks.fired"), callbacks_before);
  EXPECT_GT(Metric("xsim.events.enqueued"), enqueued_before);
  EXPECT_GT(Metric("xt.events.dispatched"), dispatched_before);
  EXPECT_GT(Metric("xsim.event_queue.depth.max"), 0u);
}

TEST_F(ObsTest, ProtocolLinesCountedOnCommChannel) {
  Wafe wafe;
  int to_frontend[2];
  ASSERT_EQ(::pipe(to_frontend), 0);
  wafe.frontend().AdoptBackend(to_frontend[0], -1);
  std::string lines = "%set x 41\npassthrough line\n%set y 1\n";
  ASSERT_EQ(::write(to_frontend[1], lines.data(), lines.size()),
            static_cast<ssize_t>(lines.size()));
  EXPECT_EQ(wafe.frontend().OnBackendReadable(), 3);
  EXPECT_EQ(Metric("comm.lines.in"), 3u);
  EXPECT_EQ(Metric("comm.percent.commands"), 2u);
  EXPECT_EQ(Metric("comm.passthrough.lines"), 1u);
  EXPECT_EQ(Metric("comm.bytes.in"), lines.size());
  EXPECT_EQ(Eval(wafe, "set x"), "41");
  ::close(to_frontend[1]);
}

// Acceptance: one scripted session produces trace spans in all three major
// categories — tcl (command evals), xt (dispatch/callbacks), and comm
// (protocol lines).
TEST_F(ObsTest, TraceCoversTclXtAndCommCategories) {
  Wafe wafe;
  wobs::SetTraceEnabled(true);
  Eval(wafe, "command hello topLevel callback {set fired 1}");
  Eval(wafe, "realize");
  Click(wafe, wafe.app().FindWidget("hello"));

  int to_frontend[2];
  ASSERT_EQ(::pipe(to_frontend), 0);
  wafe.frontend().AdoptBackend(to_frontend[0], -1);
  std::string line = "%set z 9\n";
  ASSERT_EQ(::write(to_frontend[1], line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  EXPECT_EQ(wafe.frontend().OnBackendReadable(), 1);
  ::close(to_frontend[1]);

  std::string json = Eval(wafe, "traceDump - json");
  wobs::SetTraceEnabled(false);
  EXPECT_NE(json.find("\"cat\":\"tcl\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"xt\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
}

TEST_F(ObsTest, DisabledGateKeepsCountersFrozen) {
  Wafe wafe;
  wobs::SetMetricsEnabled(false);
  wobs::Registry::Instance().ResetMetrics();
  wafe.Eval("set x 1");
  wafe.Eval("set y 2");
  std::uint64_t value = 1;
  ASSERT_TRUE(wobs::Registry::Instance().GetMetric("tcl.commands", &value));
  EXPECT_EQ(value, 0u);  // everything since the fixture's reset was dropped
}

}  // namespace
}  // namespace wafe
