// Remaining coverage gaps: display op-log bounding, event put-back, scan
// conversions, interpreter nesting limits, format corner cases, and spec
// registry statistics.
#include <gtest/gtest.h>

#include "src/core/percent.h"
#include "src/core/wafe.h"
#include "src/xsim/display.h"

namespace {

TEST(DisplayGaps, DrawOpLogIsBounded) {
  xsim::Display display;
  display.set_draw_op_limit(100);
  xsim::WindowId w = display.CreateWindow(display.root(), xsim::Rect{0, 0, 50, 50});
  display.MapWindow(w);
  for (int i = 0; i < 1000; ++i) {
    display.FillRect(w, xsim::Rect{0, 0, 5, 5}, xsim::kBlackPixel);
  }
  EXPECT_LE(display.draw_ops().size(), 100u);
  EXPECT_GE(display.draw_ops().size(), 50u);  // half survives each trim
}

TEST(DisplayGaps, PutBackEventIsNextDelivered) {
  xsim::Display display;
  display.InjectMotion(1, 1);
  xsim::Event first = display.NextEvent();
  display.PutBackEvent(first);
  xsim::Event again = display.NextEvent();
  EXPECT_EQ(again.type, first.type);
  EXPECT_EQ(again.window, first.window);
}

TEST(DisplayGaps, NextEventOnEmptyQueueIsNone) {
  xsim::Display display;
  EXPECT_FALSE(display.Pending());
  EXPECT_EQ(display.NextEvent().type, xsim::EventType::kNone);
}

TEST(DisplayGaps, SelectionClearCarriesName) {
  xsim::Display display;
  xsim::WindowId a = display.CreateWindow(display.root(), xsim::Rect{0, 0, 10, 10});
  xsim::WindowId b = display.CreateWindow(display.root(), xsim::Rect{20, 0, 10, 10});
  display.SetSelectionOwner("PRIMARY", a);
  display.SetSelectionOwner("PRIMARY", b);
  xsim::Event clear = display.NextEvent();
  EXPECT_EQ(clear.type, xsim::EventType::kSelectionClear);
  EXPECT_EQ(clear.window, a);
  EXPECT_EQ(clear.message, "PRIMARY");
  EXPECT_EQ(display.SelectionOwner("PRIMARY"), b);
}

TEST(DisplayGaps, BorderSettingsStored) {
  xsim::Display display;
  xsim::WindowId w = display.CreateWindow(display.root(), xsim::Rect{0, 0, 10, 10}, 2);
  display.SetWindowBorder(w, 3, xsim::MakePixel(1, 2, 3));
  SUCCEED();  // no crash; border is decoration-only in the simulation
}

// --- Interpreter gaps ---------------------------------------------------------------

TEST(InterpGaps, NestingLimitExactBoundary) {
  wtcl::Interp interp;
  interp.set_max_nesting(10);
  // 8 nested evals fit; 20 do not.
  std::string shallow = "set x 1";
  for (int i = 0; i < 7; ++i) {
    shallow = "eval {" + shallow + "}";
  }
  EXPECT_TRUE(interp.Eval(shallow).ok());
  std::string deep = "set x 1";
  for (int i = 0; i < 20; ++i) {
    deep = "eval {" + deep + "}";
  }
  EXPECT_EQ(interp.Eval(deep).code, wtcl::Status::kError);
}

TEST(InterpGaps, ScanHexOctalChar) {
  wtcl::Interp interp;
  EXPECT_TRUE(interp.Eval("scan {ff 17 A} {%x %o %c} h o c").ok());
  std::string v;
  interp.GetVar("h", &v);
  EXPECT_EQ(v, "255");
  interp.GetVar("o", &v);
  EXPECT_EQ(v, "15");
  interp.GetVar("c", &v);
  EXPECT_EQ(v, "65");
}

TEST(InterpGaps, FormatNegativeAndWidth) {
  wtcl::Interp interp;
  EXPECT_EQ(interp.Eval("format %d -42").value, "-42");
  EXPECT_EQ(interp.Eval("format %06d -42").value, "-00042");
  EXPECT_EQ(interp.Eval("format %o 8").value, "10");
  EXPECT_EQ(interp.Eval("format %X 255").value, "FF");
  EXPECT_EQ(interp.Eval("format %*d 6 42").value, "    42");
}

TEST(InterpGaps, StringMatchBrackets) {
  wtcl::Interp interp;
  EXPECT_EQ(interp.Eval("string match {[a-c]x} bx").value, "1");
  EXPECT_EQ(interp.Eval("string match {[a-c]x} dx").value, "0");
}

TEST(InterpGaps, OutputDefaultsSafely) {
  wtcl::Interp interp;
  // No sink registered: Output writes to stdout without crashing.
  interp.Output("");
  SUCCEED();
}

// --- Wafe core gaps -----------------------------------------------------------------

TEST(WafeGaps, AliasCountersStayConsistent) {
  wafe::Wafe app;
  // sV and gV are aliases; the registry's totals count them once as specs
  // but the generated/handwritten split must not double count.
  EXPECT_EQ(app.specs().generated_count() + app.specs().handwritten_count() + 2,
            app.specs().total_count())
      << "exactly the two aliases (sV, gV) are excluded from the split";
}

TEST(WafeGaps, LinesEvaluatedCountsProtocolOnly) {
  wafe::Wafe app;
  app.Eval("set x 1");  // direct eval: not a protocol line
  EXPECT_EQ(app.lines_evaluated(), 0u);
}

TEST(WafeGaps, QuitCarriesExitCode) {
  wafe::Wafe app;
  app.Eval("quit 3");
  EXPECT_TRUE(app.quit_requested());
  EXPECT_EQ(app.exit_code(), 3);
}

TEST(WafeGaps, PercentTUnknownForUnsupportedEvents) {
  wafe::Wafe app;
  std::string error;
  xtk::Widget* w = app.app().CreateWidget("w", "Label", app.top_level(), {}, true, &error);
  ASSERT_NE(w, nullptr);
  xsim::Event event;
  event.type = xsim::EventType::kClientMessage;
  EXPECT_EQ(wafe::SubstituteEventCodes("%t", *w, event), "unknown");
}

TEST(WafeGaps, ReferenceListsAliases) {
  wafe::Wafe app;
  std::string reference = app.specs().ReferenceText();
  EXPECT_NE(reference.find("alias for setValues"), std::string::npos);
  EXPECT_NE(reference.find("alias for getValue"), std::string::npos);
}

}  // namespace
