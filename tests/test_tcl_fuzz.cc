// Eval-guard and fuzz coverage for the Tcl layer: the depth / step / wall-
// clock limits must turn every runaway script into a catchable `limit
// exceeded` error, errorInfo must carry a usable trace, and randomly
// generated hostile scripts — fed through Eval directly and through the
// %-protocol — must never crash or hang the frontend. The acceptance
// scenario at the end proves a backend emitting 1000 malformed lines leaves
// the UI alive and still dispatching events.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include "helpers/ui_harness.h"
#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/tcl/interp.h"

namespace wafe {
namespace {

class EvalGuardTest : public ::testing::Test {
 protected:
  ~EvalGuardTest() override { wobs::SetMetricsEnabled(false); }

  std::string Metric(Wafe& wafe, const std::string& name) {
    wtcl::Result r = wafe.Eval("metrics get " + name);
    EXPECT_EQ(r.code, wtcl::Status::kOk) << r.value;
    return r.value;
  }
};

// Acceptance: an infinitely recursing script trips the depth limit and the
// interpreter stays fully usable.
TEST_F(EvalGuardTest, InfiniteRecursionTripsDepthLimit) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit depth 64").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("proc boom {} {boom}").code, wtcl::Status::kOk);
  wtcl::Result r = wafe.Eval("boom");
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("limit exceeded"), std::string::npos);
  EXPECT_NE(Metric(wafe, "tcl.eval.limit.depth"), "0");
  EXPECT_EQ(wafe.Eval("expr 1 + 1").value, "2");
}

// Acceptance: an infinite loop trips the step budget in bounded time.
TEST_F(EvalGuardTest, InfiniteLoopTripsStepBudget) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit steps 5000").code, wtcl::Status::kOk);
  wtcl::Result r = wafe.Eval("while {1} {set x 1}");
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("limit exceeded"), std::string::npos);
  EXPECT_NE(r.value.find("step budget"), std::string::npos);
  EXPECT_EQ(Metric(wafe, "tcl.eval.limit.steps"), "1");
  EXPECT_EQ(wafe.Eval("set ok fine").value, "fine");
}

// Acceptance: the wall-clock watchdog interrupts a loop the step budget
// would not catch (no step limit armed).
TEST_F(EvalGuardTest, WallClockWatchdogInterruptsLongLoop) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit ms 100").code, wtcl::Status::kOk);
  auto start = std::chrono::steady_clock::now();
  wtcl::Result r = wafe.Eval("while {1} {set x 1}");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("wall-clock budget"), std::string::npos);
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_EQ(Metric(wafe, "tcl.eval.limit.ms"), "1");
}

// A hostile `catch` loop cannot swallow the trip: the limit error is sticky
// until evaluation unwinds to the top level, then the interpreter is clean.
TEST_F(EvalGuardTest, CatchCannotDefeatStickyLimit) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("evalLimit steps 2000").code, wtcl::Status::kOk);
  auto start = std::chrono::steady_clock::now();
  wtcl::Result r = wafe.Eval("while {1} {catch {set x 1} m}");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("limit exceeded"), std::string::npos);
  EXPECT_LT(elapsed.count(), 5000);

  // Within one top-level Eval the trip re-raises even after a catch...
  r = wafe.Eval("catch {while {1} {set x 1}} m\nset afterward 1");
  EXPECT_EQ(r.code, wtcl::Status::kError);
  // ...but a fresh top-level Eval starts with a fresh budget.
  EXPECT_EQ(wafe.Eval("set clean 1").code, wtcl::Status::kOk);
}

// errorInfo carries the failing command, nesting, and source line.
TEST_F(EvalGuardTest, ErrorInfoTraceNamesCommandAndLine) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("proc inner {} {\nnoSuchCommand a b\n}").code, wtcl::Status::kOk);
  wtcl::Result r = wafe.Eval("inner");
  ASSERT_EQ(r.code, wtcl::Status::kError);
  ASSERT_TRUE(wafe.interp().error_trace_active());
  std::string info;
  ASSERT_TRUE(wafe.interp().GetGlobalVar("errorInfo", &info));
  EXPECT_NE(info.find("while executing"), std::string::npos);
  EXPECT_NE(info.find("noSuchCommand a b"), std::string::npos);
  EXPECT_NE(info.find("line 2"), std::string::npos);
  EXPECT_NE(info.find("\"inner\""), std::string::npos);

  // A later success clears the trace flag, so a stale trace is never
  // attached to an unrelated report.
  ASSERT_EQ(wafe.Eval("set fine 1").code, wtcl::Status::kOk);
  EXPECT_FALSE(wafe.interp().error_trace_active());
}

// --- Random-script fuzzing ----------------------------------------------------------

// Deterministic hostile-script generator: Tcl syntax fragments, unbalanced
// quoting, control structures, and raw bytes, recombined at random.
std::string RandomScript(std::mt19937& rng) {
  static const char* kTokens[] = {
      "set",      "x",     "$x",      "$undefined", "[",        "]",     "{",
      "}",        "\"",    ";",       "\n",         "proc",     "while", "if",
      "expr",     "1",     "+",       "{1}",        "catch",    "foreach",
      "break",    "continue", "return", "uplevel",  "upvar",    "global",
      "\\",       "incr",  "string",  "list",       "lindex",   "rename",
      "unset",    "eval",  "boom",    "{boom}",     "$",        "(",     ")",
  };
  std::uniform_int_distribution<int> length(1, 40);
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kTokens) / sizeof(kTokens[0]) - 1);
  std::uniform_int_distribution<int> raw(0, 9);
  std::uniform_int_distribution<int> byte(1, 126);
  std::string script;
  int tokens = length(rng);
  for (int i = 0; i < tokens; ++i) {
    if (raw(rng) == 0) {
      script.push_back(static_cast<char>(byte(rng)));
    } else {
      script += kTokens[pick(rng)];
    }
    script.push_back(' ');
  }
  return script;
}

// Hand-picked pathological inputs a random walk is unlikely to produce.
std::vector<std::string> HostileScripts() {
  std::vector<std::string> scripts;
  scripts.push_back("proc boom {} {boom}\nboom");
  scripts.push_back("proc a {} {b}\nproc b {} {a}\na");
  scripts.push_back("while {1} {}");
  scripts.push_back("while {1} {catch {error x} m}");
  scripts.push_back("for {set i 0} {1} {incr i} {set x $i}");
  scripts.push_back(std::string(2000, '{'));
  scripts.push_back(std::string(2000, '['));
  scripts.push_back(std::string(500, '[') + "expr 1" + std::string(500, ']'));
  scripts.push_back("set x \"unterminated");
  scripts.push_back("set x {unterminated");
  scripts.push_back("proc p args {eval $args}\np p p p p p p p");
  scripts.push_back("rename set gone\ncatch {set x 1}");
  scripts.push_back("proc while {a b} {}\nwhile {1} {}");
  std::string deep = "expr 1";
  for (int i = 0; i < 100; ++i) {
    deep = "eval {" + deep + "}";
  }
  scripts.push_back(deep);
  return scripts;
}

void ArmLimits(Wafe& wafe) {
  ASSERT_EQ(wafe.Eval("evalLimit depth 64").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit steps 2000").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit ms 50").code, wtcl::Status::kOk);
}

// Every generated script either completes or fails with a normal error —
// never a crash, never a hang past the watchdog (each interpreter survives
// all of them in sequence).
TEST_F(EvalGuardTest, RandomScriptsNeverCrashOrHangEval) {
  Wafe wafe;
  ArmLimits(wafe);
  std::mt19937 generator(20260805);
  for (int i = 0; i < 200; ++i) {
    std::string script = RandomScript(generator);
    wtcl::Result r = wafe.Eval(script);
    EXPECT_TRUE(r.code == wtcl::Status::kOk || r.code == wtcl::Status::kError ||
                r.code == wtcl::Status::kBreak || r.code == wtcl::Status::kContinue ||
                r.code == wtcl::Status::kReturn)
        << script;
  }
  for (const std::string& script : HostileScripts()) {
    wafe.Eval(script);
  }
  // The interpreter survived with its commands intact.
  EXPECT_EQ(wafe.Eval("expr 2 + 3").value, "5");
}

// Cache correctness: two interpreters replay the whole corpus in lockstep —
// one keeps its compile caches warm, the other flushes before every Eval —
// and must agree byte-for-byte on status, result, and errorInfo. Only the
// deterministic depth/step limits are armed (no wall clock), so a guard trip
// lands on exactly the same iteration in both.
TEST_F(EvalGuardTest, CachedAndFlushedEvalsAgreeByteForByte) {
  Wafe cached;
  Wafe flushed;
  for (Wafe* wafe : {&cached, &flushed}) {
    ASSERT_EQ(wafe->Eval("evalLimit depth 64").code, wtcl::Status::kOk);
    ASSERT_EQ(wafe->Eval("evalLimit steps 2000").code, wtcl::Status::kOk);
  }
  std::mt19937 generator(20260805);
  std::vector<std::string> corpus;
  for (int i = 0; i < 200; ++i) {
    corpus.push_back(RandomScript(generator));
  }
  for (const std::string& script : HostileScripts()) {
    corpus.push_back(script);
  }
  for (const std::string& script : corpus) {
    // Twice per script: the second round is a guaranteed cache hit on the
    // warm side while the cold side re-parses from scratch.
    for (int round = 0; round < 2; ++round) {
      flushed.interp().FlushCompileCaches();
      wtcl::Result warm = cached.Eval(script);
      wtcl::Result cold = flushed.Eval(script);
      ASSERT_EQ(warm.code, cold.code) << script;
      ASSERT_EQ(warm.value, cold.value) << script;
      std::string warm_info;
      std::string cold_info;
      bool warm_has = cached.interp().GetGlobalVar("errorInfo", &warm_info);
      bool cold_has = flushed.interp().GetGlobalVar("errorInfo", &cold_info);
      ASSERT_EQ(warm_has, cold_has) << script;
      ASSERT_EQ(warm_info, cold_info) << script;
    }
  }
  EXPECT_EQ(cached.Eval("expr 2 + 3").value, flushed.Eval("expr 2 + 3").value);
}

// The same hostility through the %-protocol: malformed and runaway lines
// produce error reports on the channel, and the frontend keeps draining.
TEST_F(EvalGuardTest, RandomProtocolLinesNeverWedgeTheChannel) {
  int to_wafe[2];
  int from_wafe[2];
  ASSERT_EQ(::pipe(to_wafe), 0);
  ASSERT_EQ(::pipe(from_wafe), 0);
  Wafe wafe;
  wafe.set_backend_output(true);
  wafe.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  ArmLimits(wafe);

  std::mt19937 generator(19930115);
  auto send = [&](std::string line) {
    for (char& c : line) {
      if (c == '\n') {
        c = ' ';
      }
    }
    line = "%" + line + "\n";
    ssize_t ignored = ::write(to_wafe[1], line.data(), line.size());
    (void)ignored;
    while (wafe.app().RunOneIteration(false)) {
    }
    // Keep the report pipe from filling up.
    char buffer[8192];
    while (::read(from_wafe[0], buffer, sizeof(buffer)) > 0) {
    }
  };
  ::fcntl(from_wafe[0], F_SETFL, O_NONBLOCK);
  for (int i = 0; i < 150; ++i) {
    send(RandomScript(generator));
    ASSERT_TRUE(wafe.frontend().backend_alive());
  }
  send("while {1} {set x 1}");
  ASSERT_TRUE(wafe.frontend().backend_alive());
  send("set survivor 1");
  std::string value;
  ASSERT_TRUE(wafe.interp().GetVar("survivor", &value));
  EXPECT_EQ(value, "1");
  ::close(to_wafe[1]);
  ::close(from_wafe[0]);
}

// Acceptance: a backend spraying 1000 malformed %-lines leaves the frontend
// alive, every failure reported and counted, and the UI still dispatching
// button events afterward.
TEST_F(EvalGuardTest, MalformedLineFloodLeavesUiResponsive) {
  ui_harness::UiHarness ui;
  ASSERT_EQ(ui.wafe().Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(ui.wafe().Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(ui.wafe().Eval("set clicks 0").code, wtcl::Status::kOk);
  ASSERT_EQ(ui.wafe()
                .Eval("command poker topLevel callback "
                      "{set clicks [expr $clicks + 1]}")
                .code,
            wtcl::Status::kOk);
  ui.Realize();
  ui.AttachBackendPipe();

  for (int i = 0; i < 1000; ++i) {
    ui.BackendSays("%this is not } a command " + std::to_string(i));
    if (i % 100 == 0) {
      // Drain the error reports so the pipe never backs up.
      ui.BackendReceived();
    }
  }
  std::vector<std::string> reports = ui.BackendReceived();
  ASSERT_FALSE(reports.empty());
  for (const std::string& report : reports) {
    EXPECT_EQ(report.rfind("error ", 0), 0u) << report;
  }
  EXPECT_EQ(ui.wafe().frontend().eval_errors(), 1000u);
  EXPECT_EQ(ui.wafe().Eval("metrics get comm.eval.errors").value, "1000");
  EXPECT_TRUE(ui.wafe().frontend().backend_alive());
  EXPECT_FALSE(ui.wafe().quit_requested());

  // The UI is still live: a click reaches its callback.
  ui.Click("poker");
  EXPECT_EQ(ui.Eval("set clicks"), "1");
  wobs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace wafe
