// expr evaluator: arithmetic, precedence, relational/logical operators,
// string comparison, math functions, substitution inside expressions.
#include <gtest/gtest.h>

#include "src/tcl/interp.h"

namespace wtcl {
namespace {

std::string Expr(Interp& interp, const std::string& expression) {
  Result r = interp.EvalExpr(expression);
  EXPECT_TRUE(r.ok()) << "expr: " << expression << "\nerror: " << r.value;
  return r.value;
}

struct ExprCase {
  const char* expression;
  const char* expected;
};

class ExprEval : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprEval, Evaluates) {
  Interp interp;
  EXPECT_EQ(Expr(interp, GetParam().expression), GetParam().expected)
      << GetParam().expression;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprEval,
    ::testing::Values(ExprCase{"1+2", "3"}, ExprCase{"2*3+4", "10"},
                      ExprCase{"2+3*4", "14"}, ExprCase{"(2+3)*4", "20"},
                      ExprCase{"7/2", "3"}, ExprCase{"-7/2", "-4"},
                      ExprCase{"7%3", "1"}, ExprCase{"-7%3", "2"},
                      ExprCase{"2*-3", "-6"}, ExprCase{"--5", "5"},
                      ExprCase{"10-4-3", "3"}, ExprCase{"1.5+2.5", "4.0"},
                      ExprCase{"1e2", "100.0"}, ExprCase{"0x10", "16"},
                      ExprCase{"1/2.0", "0.5"}));

INSTANTIATE_TEST_SUITE_P(
    Relational, ExprEval,
    ::testing::Values(ExprCase{"1 < 2", "1"}, ExprCase{"2 < 1", "0"},
                      ExprCase{"2 <= 2", "1"}, ExprCase{"3 >= 4", "0"},
                      ExprCase{"3 == 3", "1"}, ExprCase{"3 != 3", "0"},
                      ExprCase{"3 == 3.0", "1"}, ExprCase{"\"abc\" == \"abc\"", "1"},
                      ExprCase{"\"abc\" < \"abd\"", "1"},
                      ExprCase{"\"b\" > \"a\"", "1"}));

INSTANTIATE_TEST_SUITE_P(
    Logical, ExprEval,
    ::testing::Values(ExprCase{"1 && 1", "1"}, ExprCase{"1 && 0", "0"},
                      ExprCase{"0 || 1", "1"}, ExprCase{"0 || 0", "0"},
                      ExprCase{"!1", "0"}, ExprCase{"!0", "1"},
                      ExprCase{"1 < 2 && 2 < 3", "1"},
                      ExprCase{"true && yes", "1"}, ExprCase{"off || false", "0"}));

INSTANTIATE_TEST_SUITE_P(
    Bitwise, ExprEval,
    ::testing::Values(ExprCase{"5 & 3", "1"}, ExprCase{"5 | 3", "7"},
                      ExprCase{"5 ^ 3", "6"}, ExprCase{"~0", "-1"},
                      ExprCase{"1 << 4", "16"}, ExprCase{"256 >> 4", "16"}));

INSTANTIATE_TEST_SUITE_P(
    Ternary, ExprEval,
    ::testing::Values(ExprCase{"1 ? 10 : 20", "10"}, ExprCase{"0 ? 10 : 20", "20"},
                      ExprCase{"2 > 1 ? \"yes\" : \"no\"", "yes"},
                      ExprCase{"1 ? 0 ? 1 : 2 : 3", "2"}));

INSTANTIATE_TEST_SUITE_P(
    Functions, ExprEval,
    ::testing::Values(ExprCase{"abs(-5)", "5"}, ExprCase{"abs(-5.5)", "5.5"},
                      ExprCase{"int(3.9)", "3"}, ExprCase{"round(3.5)", "4"},
                      ExprCase{"round(-3.5)", "-4"}, ExprCase{"double(3)", "3.0"},
                      ExprCase{"sqrt(16)", "4.0"}, ExprCase{"pow(2,10)", "1024.0"},
                      ExprCase{"floor(3.7)", "3.0"}, ExprCase{"ceil(3.2)", "4.0"},
                      ExprCase{"fmod(7,3)", "1.0"}, ExprCase{"hypot(3,4)", "5.0"}));

TEST(TclExpr, VariableOperands) {
  Interp interp;
  interp.Eval("set a 6");
  interp.Eval("set b 7");
  EXPECT_EQ(Expr(interp, "$a * $b"), "42");
}

TEST(TclExpr, CommandOperands) {
  Interp interp;
  interp.Eval("proc five {} {return 5}");
  EXPECT_EQ(Expr(interp, "[five] + 1"), "6");
}

TEST(TclExpr, BracedStringOperand) {
  Interp interp;
  EXPECT_EQ(Expr(interp, "{abc} == {abc}"), "1");
}

TEST(TclExpr, StringVariableComparison) {
  Interp interp;
  interp.Eval("set w label1");
  EXPECT_EQ(Expr(interp, "$w == \"label1\""), "1");
}

TEST(TclExpr, DivideByZero) {
  Interp interp;
  EXPECT_EQ(interp.EvalExpr("1/0").code, Status::kError);
  EXPECT_EQ(interp.EvalExpr("1%0").code, Status::kError);
}

TEST(TclExpr, NonNumericArithmeticError) {
  Interp interp;
  EXPECT_EQ(interp.EvalExpr("\"abc\" + 1").code, Status::kError);
}

TEST(TclExpr, SyntaxErrors) {
  Interp interp;
  EXPECT_EQ(interp.EvalExpr("1 +").code, Status::kError);
  EXPECT_EQ(interp.EvalExpr("(1").code, Status::kError);
  EXPECT_EQ(interp.EvalExpr("1 2").code, Status::kError);
  EXPECT_EQ(interp.EvalExpr("").code, Status::kError);
}

TEST(TclExpr, UnknownFunction) {
  Interp interp;
  EXPECT_EQ(interp.EvalExpr("mystery(1)").code, Status::kError);
}

TEST(TclExpr, ExprCommandConcatenatesArgs) {
  Interp interp;
  Result r = interp.Eval("expr 1 + 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, "3");
}

TEST(TclExpr, FloatFormatting) {
  Interp interp;
  // Doubles stay recognizable as doubles.
  EXPECT_EQ(Expr(interp, "1.0 + 1.0"), "2.0");
}

TEST(TclExpr, ExprBooleanApi) {
  Interp interp;
  bool value = false;
  ASSERT_TRUE(interp.ExprBoolean("3 > 2", &value).ok());
  EXPECT_TRUE(value);
  ASSERT_TRUE(interp.ExprBoolean("3 < 2", &value).ok());
  EXPECT_FALSE(value);
  EXPECT_EQ(interp.ExprBoolean("\"notabool\"", &value).code, Status::kError);
}

// Property sweep: integer identities hold across a range of values.
class ExprIntProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprIntProperty, AdditionCommutes) {
  Interp interp;
  int n = GetParam();
  std::string a = Expr(interp, std::to_string(n) + " + 17");
  std::string b = Expr(interp, "17 + " + std::to_string(n));
  EXPECT_EQ(a, b);
}

TEST_P(ExprIntProperty, DivModIdentity) {
  Interp interp;
  int n = GetParam();
  // n == (n/d)*d + n%d  with Tcl's floored division, for several divisors.
  for (int d : {3, 7, -3}) {
    std::string q = Expr(interp, std::to_string(n) + " / " + std::to_string(d));
    std::string m = Expr(interp, std::to_string(n) + " % " + std::to_string(d));
    std::string back = Expr(interp, q + " * " + std::to_string(d) + " + " + m);
    EXPECT_EQ(back, std::to_string(n)) << n << " divisor " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExprIntProperty,
                         ::testing::Values(-100, -17, -1, 0, 1, 2, 16, 99, 1024, 65535));

}  // namespace
}  // namespace wtcl
