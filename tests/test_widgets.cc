// Widget model + Athena widget behavior: creation, resources, realize,
// dispatch, layout, destroy.
#include <gtest/gtest.h>

#include "src/xaw/athena.h"
#include "src/xt/app.h"

namespace {

using xaw::RegisterAthenaClasses;
using xtk::AppContext;
using xtk::CallData;
using xtk::Widget;

class WidgetTest : public ::testing::Test {
 protected:
  WidgetTest() : app_("wafe", "Wafe") {
    RegisterAthenaClasses(app_, /*three_d=*/true);
    std::string error;
    top_ = app_.CreateShell("topLevel", "ApplicationShell", &app_.display(), {}, &error);
    EXPECT_NE(top_, nullptr) << error;
  }

  Widget* Create(const std::string& name, const std::string& cls, Widget* parent,
                 std::vector<std::pair<std::string, std::string>> args = {}) {
    std::string error;
    Widget* w = app_.CreateWidget(name, cls, parent, args, true, &error);
    EXPECT_NE(w, nullptr) << error;
    return w;
  }

  AppContext app_;
  Widget* top_ = nullptr;
};

TEST_F(WidgetTest, CreateLabelResolvesDefaults) {
  Widget* label = Create("l", "Label", top_);
  EXPECT_EQ(label->GetString("label"), "l");  // defaults to widget name
  EXPECT_TRUE(label->GetBool("sensitive"));
  EXPECT_EQ(label->GetPixel("background", 0), xsim::kWhitePixel);
  EXPECT_GT(label->width(), 1u);  // preferred size from the text
}

TEST_F(WidgetTest, ExplicitEmptyLabelStaysEmpty) {
  Widget* label = Create("result", "Label", top_, {{"label", ""}});
  EXPECT_EQ(label->GetString("label"), "");
}

TEST_F(WidgetTest, CreationArgsConvert) {
  Widget* label = Create("l", "Label", top_,
                         {{"background", "red"}, {"foreground", "blue"}, {"width", "200"}});
  EXPECT_EQ(label->GetPixel("background", 0), xsim::MakePixel(255, 0, 0));
  EXPECT_EQ(label->GetPixel("foreground", 0), xsim::MakePixel(0, 0, 255));
  EXPECT_EQ(label->width(), 200u);
}

TEST_F(WidgetTest, UnknownClassRejected) {
  std::string error;
  EXPECT_EQ(app_.CreateWidget("x", "NoSuchClass", top_, {}, true, &error), nullptr);
  EXPECT_NE(error.find("unknown widget class"), std::string::npos);
}

TEST_F(WidgetTest, DuplicateNameRejected) {
  Create("dup", "Label", top_);
  std::string error;
  EXPECT_EQ(app_.CreateWidget("dup", "Label", top_, {}, true, &error), nullptr);
  EXPECT_NE(error.find("already exists"), std::string::npos);
}

TEST_F(WidgetTest, UnknownResourceRejected) {
  std::string error;
  EXPECT_EQ(app_.CreateWidget("l", "Label", top_, {{"frobnicate", "1"}}, true, &error),
            nullptr);
  EXPECT_NE(error.find("unknown resource"), std::string::npos);
}

TEST_F(WidgetTest, BadColorRejected) {
  std::string error;
  EXPECT_EQ(app_.CreateWidget("l", "Label", top_, {{"background", "nocolor"}}, true, &error),
            nullptr);
  EXPECT_NE(error.find("no such color"), std::string::npos);
}

TEST_F(WidgetTest, LabelHas42ResourcesUnderXaw3d) {
  // The paper: "the number of resources available for the Label widget
  // class ... is 42 using the X11R5 Xaw3d libraries".
  Widget* label = Create("l", "Label", top_);
  std::vector<const xtk::ResourceSpec*> specs = label->widget_class()->AllResources();
  EXPECT_EQ(specs.size(), 42u);
  // And the list starts with the Core resources in the paper's order.
  ASSERT_GE(specs.size(), 12u);
  EXPECT_EQ(specs[0]->name, "destroyCallback");
  EXPECT_EQ(specs[1]->name, "ancestorSensitive");
  EXPECT_EQ(specs[2]->name, "x");
  EXPECT_EQ(specs[3]->name, "y");
  EXPECT_EQ(specs[4]->name, "width");
  EXPECT_EQ(specs[5]->name, "height");
  EXPECT_EQ(specs[6]->name, "borderWidth");
  EXPECT_EQ(specs[7]->name, "sensitive");
  EXPECT_EQ(specs[8]->name, "screen");
  EXPECT_EQ(specs[9]->name, "depth");
  EXPECT_EQ(specs[10]->name, "colormap");
  EXPECT_EQ(specs[11]->name, "background");
}

TEST_F(WidgetTest, PlainXawLabelHasFewerResources) {
  xtk::AppContext plain("wafe", "Wafe");
  RegisterAthenaClasses(plain, /*three_d=*/false);
  const xtk::WidgetClass* label = plain.FindClass("Label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->AllResources().size(), 35u);  // 42 - 7 ThreeD resources
}

TEST_F(WidgetTest, RealizeCreatesWindows) {
  Widget* form = Create("f", "Form", top_);
  Widget* label = Create("l", "Label", form);
  app_.RealizeWidget(top_);
  EXPECT_TRUE(top_->realized());
  EXPECT_TRUE(form->realized());
  EXPECT_TRUE(label->realized());
  EXPECT_NE(label->window(), xsim::kNoWindow);
  EXPECT_TRUE(app_.display().IsViewable(label->window()));
}

TEST_F(WidgetTest, RealizedLabelDrawsItsText) {
  Widget* label = Create("l", "Label", top_, {{"label", "Wafe new World"}});
  (void)label;
  app_.RealizeWidget(top_);
  EXPECT_TRUE(app_.display().WindowShowsText(label->window(), "Wafe new World"));
}

TEST_F(WidgetTest, SetValuesUpdatesAndRedraws) {
  Widget* label = Create("l", "Label", top_, {{"label", "before"}});
  app_.RealizeWidget(top_);
  app_.display().ClearDrawOps();
  std::string error;
  ASSERT_TRUE(app_.SetValues(label, {{"label", "Hi Man"}, {"background", "tomato"}}, &error))
      << error;
  EXPECT_TRUE(app_.display().WindowShowsText(label->window(), "Hi Man"));
  EXPECT_EQ(label->GetPixel("background", 0), xsim::MakePixel(255, 99, 71));
}

TEST_F(WidgetTest, GetValueFormatsBack) {
  Widget* label = Create("l", "Label", top_,
                         {{"label", "text"}, {"background", "red"}, {"width", "123"}});
  std::string out;
  std::string error;
  ASSERT_TRUE(app_.GetValue(label, "label", &out, &error));
  EXPECT_EQ(out, "text");
  ASSERT_TRUE(app_.GetValue(label, "width", &out, &error));
  EXPECT_EQ(out, "123");
  ASSERT_TRUE(app_.GetValue(label, "background", &out, &error));
  EXPECT_EQ(out, "#ff0000");
  ASSERT_TRUE(app_.GetValue(label, "sensitive", &out, &error));
  EXPECT_EQ(out, "True");
  EXPECT_FALSE(app_.GetValue(label, "nonsense", &out, &error));
}

TEST_F(WidgetTest, DestroyRemovesSubtreeAndFiresCallback) {
  Widget* form = Create("f", "Form", top_);
  Widget* label = Create("l", "Label", form);
  (void)label;
  int destroyed = 0;
  xtk::CallbackList list;
  list.push_back(xtk::Callback{"count", [&destroyed](Widget&, const CallData&) {
                                 ++destroyed;
                               }});
  form->SetRawValue("destroyCallback", list);
  app_.RealizeWidget(top_);
  std::size_t windows_before = app_.display().WindowCount();
  app_.DestroyWidget(form);
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(app_.FindWidget("f"), nullptr);
  EXPECT_EQ(app_.FindWidget("l"), nullptr);
  EXPECT_EQ(app_.display().WindowCount(), windows_before - 2);
}

TEST_F(WidgetTest, CommandCallbackFiresOnClick) {
  Widget* button = Create("b", "Command", top_, {{"label", "press"}});
  int fired = 0;
  xtk::CallbackList list;
  list.push_back(xtk::Callback{"fire", [&fired](Widget&, const CallData&) { ++fired; }});
  button->SetRawValue("callback", list);
  app_.RealizeWidget(top_);
  xsim::Point origin = app_.display().RootPosition(button->window());
  app_.display().InjectButtonPress(origin.x + 2, origin.y + 2, 1);
  app_.display().InjectButtonRelease(origin.x + 2, origin.y + 2, 1);
  app_.ProcessPending();
  EXPECT_EQ(fired, 1);
}

TEST_F(WidgetTest, InsensitiveWidgetDoesNotFire) {
  Widget* button = Create("b", "Command", top_, {{"sensitive", "false"}});
  int fired = 0;
  xtk::CallbackList list;
  list.push_back(xtk::Callback{"fire", [&fired](Widget&, const CallData&) { ++fired; }});
  button->SetRawValue("callback", list);
  app_.RealizeWidget(top_);
  xsim::Point origin = app_.display().RootPosition(button->window());
  app_.display().InjectButtonPress(origin.x + 2, origin.y + 2, 1);
  app_.display().InjectButtonRelease(origin.x + 2, origin.y + 2, 1);
  app_.ProcessPending();
  EXPECT_EQ(fired, 0);
}

TEST_F(WidgetTest, ToggleFlipsState) {
  Widget* toggle = Create("t", "Toggle", top_);
  app_.RealizeWidget(top_);
  EXPECT_FALSE(toggle->GetBool("state"));
  xsim::Point origin = app_.display().RootPosition(toggle->window());
  app_.display().InjectButtonPress(origin.x + 2, origin.y + 2, 1);
  app_.display().InjectButtonRelease(origin.x + 2, origin.y + 2, 1);
  app_.ProcessPending();
  EXPECT_TRUE(toggle->GetBool("state"));
}

TEST_F(WidgetTest, FormLayoutHonorsFromVertAndFromHoriz) {
  Widget* form = Create("f", "Form", top_);
  Widget* a = Create("a", "Label", form, {{"width", "50"}, {"height", "20"}});
  Widget* b = Create("b", "Label", form,
                     {{"fromVert", "a"}, {"width", "50"}, {"height", "20"}});
  Widget* c = Create("c", "Label", form,
                     {{"fromHoriz", "a"}, {"width", "50"}, {"height", "20"}});
  app_.RealizeWidget(top_);
  EXPECT_GT(b->y(), a->y() + 19);
  EXPECT_EQ(b->x(), a->x());
  EXPECT_GT(c->x(), a->x() + 49);
  EXPECT_EQ(c->y(), a->y());
  EXPECT_GE(form->width(), 100u);
}

TEST_F(WidgetTest, BoxFlowsChildren) {
  Widget* box = Create("box", "Box", top_, {{"orientation", "horizontal"}});
  Widget* a = Create("a", "Label", box, {{"width", "40"}, {"height", "20"}});
  Widget* b = Create("b", "Label", box, {{"width", "40"}, {"height", "20"}});
  app_.RealizeWidget(top_);
  EXPECT_GT(b->x(), a->x());
  EXPECT_EQ(a->y(), b->y());
}

TEST_F(WidgetTest, PanedStacksVertically) {
  Widget* paned = Create("p", "Paned", top_);
  Widget* a = Create("a", "Label", paned, {{"height", "20"}});
  Widget* b = Create("b", "Label", paned, {{"height", "30"}});
  app_.RealizeWidget(top_);
  EXPECT_EQ(a->y(), 0);
  EXPECT_GE(b->y(), 20);
  EXPECT_EQ(a->width(), b->width());
}

TEST_F(WidgetTest, ListSelectionCallbackCarriesIndexAndItem) {
  Widget* list =
      Create("chooseLst", "List", top_, {{"list", "alpha,beta,gamma"}});
  std::string got_index;
  std::string got_item;
  xtk::CallbackList callbacks;
  callbacks.push_back(
      xtk::Callback{"grab", [&](Widget&, const CallData& data) {
                      got_index = data.Get("i");
                      got_item = data.Get("s");
                    }});
  list->SetRawValue("callback", callbacks);
  app_.RealizeWidget(top_);
  // Click on the second row.
  xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
  long row_height = static_cast<long>(font->Height()) + 2;
  xsim::Point origin = app_.display().RootPosition(list->window());
  xsim::Position y = origin.y + static_cast<xsim::Position>(2 + row_height + row_height / 2);
  app_.display().InjectButtonPress(origin.x + 3, y, 1);
  app_.display().InjectButtonRelease(origin.x + 3, y, 1);
  app_.ProcessPending();
  EXPECT_EQ(got_index, "1");
  EXPECT_EQ(got_item, "beta");
}

TEST_F(WidgetTest, ListProgrammaticInterface) {
  Widget* list = Create("l", "List", top_, {{"list", "a,b"}});
  app_.RealizeWidget(top_);
  xaw::ListChange(*list, {"x", "y", "z"}, true);
  EXPECT_EQ(list->GetLong("numberStrings"), 3);
  xaw::ListHighlight(*list, 2);
  std::string item;
  EXPECT_EQ(xaw::ListCurrent(*list, &item), 2);
  EXPECT_EQ(item, "z");
  xaw::ListUnhighlight(*list);
  EXPECT_EQ(xaw::ListCurrent(*list, &item), -1);
}

TEST_F(WidgetTest, AsciiTextTypingAccumulates) {
  Widget* input = Create("input", "AsciiText", top_,
                         {{"editType", "edit"}, {"width", "200"}});
  app_.RealizeWidget(top_);
  app_.display().SetInputFocus(input->window());
  app_.display().InjectText("120");
  app_.ProcessPending();
  EXPECT_EQ(input->GetString("string"), "120");
  EXPECT_EQ(xaw::TextGetInsertionPoint(*input), 3);
}

TEST_F(WidgetTest, AsciiTextReadOnlyIgnoresTyping) {
  Widget* input = Create("input", "AsciiText", top_, {{"editType", "read"}});
  app_.RealizeWidget(top_);
  app_.display().SetInputFocus(input->window());
  app_.display().InjectText("nope");
  app_.ProcessPending();
  EXPECT_EQ(input->GetString("string"), "");
}

TEST_F(WidgetTest, AsciiTextEditingActions) {
  Widget* input = Create("input", "AsciiText", top_, {{"editType", "edit"}});
  app_.RealizeWidget(top_);
  app_.display().SetInputFocus(input->window());
  app_.display().InjectText("abc");
  app_.display().InjectKeyPress(xsim::kKeyBackSpace);
  app_.ProcessPending();
  EXPECT_EQ(input->GetString("string"), "ab");
  // Ctrl-a to the beginning, then type at the front.
  app_.display().InjectKeyPress(xsim::AsciiToKeysym('a'), xsim::kControlMask);
  app_.ProcessPending();
  EXPECT_EQ(xaw::TextGetInsertionPoint(*input), 0);
  app_.display().InjectText("x");
  app_.ProcessPending();
  EXPECT_EQ(input->GetString("string"), "xab");
}

TEST_F(WidgetTest, OverrideTranslationsViaAction) {
  Widget* label = Create("xev", "Label", top_);
  std::vector<std::string> log;
  app_.RegisterAction("logit", [&log](Widget&, const xsim::Event& event,
                                      const std::vector<std::string>&) {
    log.push_back(event.TypeName());
  });
  std::string error;
  xtk::TranslationsPtr incoming = xtk::ParseTranslations("<KeyPress>: logit()", &error);
  ASSERT_NE(incoming, nullptr);
  label->SetRawValue("translations", xtk::MergeTranslations(label->GetTranslations(), incoming,
                                                            xtk::MergeMode::kOverride));
  app_.RealizeWidget(top_);
  app_.display().SetInputFocus(label->window());
  app_.display().InjectKeyPress(xsim::AsciiToKeysym('w'));
  app_.ProcessPending();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "KeyPress");
}

TEST_F(WidgetTest, MenuButtonPopsUpMenuWithGrab) {
  std::string error;
  Widget* menu = app_.CreateWidget("menu", "SimpleMenu", top_, {}, false, &error);
  ASSERT_NE(menu, nullptr) << error;
  Create("entry1", "SmeBSB", menu, {{"label", "First"}});
  Widget* mb = Create("mb", "MenuButton", top_, {{"menuName", "menu"}});
  app_.RealizeWidget(top_);
  xsim::Point origin = app_.display().RootPosition(mb->window());
  app_.display().InjectButtonPress(origin.x + 2, origin.y + 2, 1);
  app_.ProcessPending();
  EXPECT_TRUE(app_.IsPoppedUp(menu));
  EXPECT_EQ(app_.display().PointerGrab(), menu->window());
}

TEST_F(WidgetTest, ViewportAdoptsChildSize) {
  Widget* viewport = Create("v", "Viewport", top_);
  Widget* child = Create("big", "Label", viewport, {{"width", "300"}, {"height", "150"}});
  (void)child;
  app_.RealizeWidget(top_);
  EXPECT_EQ(viewport->width(), 300u);
  EXPECT_EQ(viewport->height(), 150u);
}

TEST_F(WidgetTest, MultipleDisplays) {
  std::string error;
  Widget* top2 = app_.CreateShell("top2", "ApplicationShell", &app_.OpenDisplay("dec4:0"), {},
                                  &error);
  ASSERT_NE(top2, nullptr) << error;
  Widget* label = app_.CreateWidget("l2", "Label", top2, {}, true, &error);
  ASSERT_NE(label, nullptr) << error;
  app_.RealizeWidget(top2);
  EXPECT_EQ(&label->display(), &app_.OpenDisplay("dec4:0"));
  EXPECT_TRUE(app_.OpenDisplay("dec4:0").IsViewable(label->window()));
  EXPECT_EQ(app_.Displays().size(), 2u);
}

TEST_F(WidgetTest, ScrollbarThumbAndCallbacks) {
  Widget* bar = Create("sb", "Scrollbar", top_, {{"length", "100"}});
  std::string jumped;
  xtk::CallbackList callbacks;
  callbacks.push_back(xtk::Callback{"jump", [&](Widget&, const CallData& data) {
                                      jumped = data.Get("t");
                                    }});
  bar->SetRawValue("jumpProc", callbacks);
  app_.RealizeWidget(top_);
  xsim::Point origin = app_.display().RootPosition(bar->window());
  app_.display().InjectButtonPress(origin.x + 5, origin.y + 50, 1);
  app_.ProcessPending();
  EXPECT_FALSE(jumped.empty());
  EXPECT_NEAR(std::stod(jumped), 0.5, 0.05);
}

TEST_F(WidgetTest, ToggleRadioGroup) {
  Widget* form = Create("f", "Form", top_);
  Widget* t1 = Create("t1", "Toggle", form, {{"radioData", "one"}, {"state", "true"}});
  Widget* t2 = Create("t2", "Toggle", form, {{"radioGroup", "t1"}, {"radioData", "two"}});
  app_.RealizeWidget(top_);
  EXPECT_EQ(xaw::ToggleGetCurrent(*t1), "one");
  xaw::ToggleSetCurrent(*t1, "two");
  EXPECT_FALSE(t1->GetBool("state"));
  EXPECT_TRUE(t2->GetBool("state"));
}

TEST_F(WidgetTest, StripChartAccumulates) {
  Widget* chart = Create("chart", "StripChart", top_);
  app_.RealizeWidget(top_);
  for (int i = 0; i < 5; ++i) {
    xaw::StripChartAddValue(*chart, i * 1.5);
  }
  EXPECT_EQ(chart->GetStringList("_samples").size(), 5u);
}

}  // namespace
