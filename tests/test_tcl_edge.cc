// Deeper Tcl semantics: scoping corners, arrays through upvar, errorCode,
// uplevel #0, command redefinition, nested data, and script round trips.
#include <gtest/gtest.h>

#include "src/tcl/interp.h"

namespace wtcl {
namespace {

std::string Eval(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
  return r.value;
}

TEST(TclScoping, UpvarToArrayElement) {
  Interp interp;
  Eval(interp, "set a(key) original");
  Eval(interp, "proc touch {} {upvar a(key) v; set v changed}");
  Eval(interp, "touch");
  EXPECT_EQ(Eval(interp, "set a(key)"), "changed");
}

TEST(TclScoping, UpvarTwoLevels) {
  Interp interp;
  // upvar 2 from inside `inner` (called by `top`, called from global) lands
  // in the global frame: top's local x is untouched, the global x changes.
  Eval(interp, "proc inner {} {upvar 2 x v; set v from-inner}");
  Eval(interp, "set x top");
  Eval(interp, "proc top {} {set x local; inner; return $x}");
  EXPECT_EQ(Eval(interp, "top"), "local");
  EXPECT_EQ(Eval(interp, "set x"), "from-inner");
}

TEST(TclScoping, UplevelHashZeroIsGlobal) {
  Interp interp;
  Eval(interp, "proc deep {} {uplevel #0 {set made_global 1}}");
  Eval(interp, "proc mid {} {deep}");
  Eval(interp, "mid");
  std::string value;
  EXPECT_TRUE(interp.GetGlobalVar("made_global", &value));
}

TEST(TclScoping, GlobalLinkSurvivesUnset) {
  Interp interp;
  Eval(interp, "set g 1");
  Eval(interp, "proc f {} {global g; unset g; set g recreated}");
  Eval(interp, "f");
  EXPECT_EQ(Eval(interp, "info exists g"), "1");
}

TEST(TclScoping, ProcLocalsVanish) {
  Interp interp;
  Eval(interp, "proc f {} {set temporary 5}");
  Eval(interp, "f");
  EXPECT_EQ(Eval(interp, "info exists temporary"), "0");
}

TEST(TclError, ErrorCodeVariable) {
  Interp interp;
  interp.Eval("error msg info {POSIX ENOENT}");
  std::string code;
  ASSERT_TRUE(interp.GetGlobalVar("errorCode", &code));
  EXPECT_EQ(code, "POSIX ENOENT");
  std::string info;
  ASSERT_TRUE(interp.GetGlobalVar("errorInfo", &info));
  EXPECT_EQ(info.rfind("info", 0), 0u);
}

TEST(TclError, CatchReturnBreakContinueCodes) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "catch {return x}"), "2");
  EXPECT_EQ(Eval(interp, "catch {break}"), "3");
  EXPECT_EQ(Eval(interp, "catch {continue}"), "4");
}

TEST(TclCommands, RedefiningProcReplacesIt) {
  Interp interp;
  Eval(interp, "proc f {} {return one}");
  Eval(interp, "proc f {} {return two}");
  EXPECT_EQ(Eval(interp, "f"), "two");
  EXPECT_EQ(Eval(interp, "llength [info procs f]"), "1");
}

TEST(TclCommands, RenameBuiltinAndWrap) {
  Interp interp;
  // The classic wrapper pattern: the delegate runs in the caller's frame.
  Eval(interp, "rename set original_set");
  Eval(interp, "proc set {args} {uplevel original_set $args}");
  EXPECT_EQ(Eval(interp, "set x wrapped"), "wrapped");
  EXPECT_EQ(Eval(interp, "set x"), "wrapped");
}

TEST(TclCommands, RenameToEmptyDeletes) {
  Interp interp;
  Eval(interp, "proc gone {} {}");
  Eval(interp, "rename gone {}");
  EXPECT_EQ(interp.Eval("gone").code, Status::kError);
}

TEST(TclData, NestedListsRoundTrip) {
  Interp interp;
  Eval(interp, "set l [list [list a b] [list c [list d e]]]");
  EXPECT_EQ(Eval(interp, "lindex [lindex $l 1] 1"), "d e");
  EXPECT_EQ(Eval(interp, "lindex [lindex [lindex $l 1] 1] 0"), "d");
}

TEST(TclData, ForeachOverNestedList) {
  Interp interp;
  Eval(interp, "set pairs {{a 1} {b 2} {c 3}}");
  Eval(interp,
       "set out {}\n"
       "foreach pair $pairs {append out [lindex $pair 0][lindex $pair 1]}");
  EXPECT_EQ(Eval(interp, "set out"), "a1b2c3");
}

TEST(TclData, ArrayGetSetRoundTrip) {
  Interp interp;
  Eval(interp, "set a(x) 1; set {a(y thing)} {space value}");
  Eval(interp, "array set b [array get a]");
  EXPECT_EQ(Eval(interp, "set b(x)"), "1");
  EXPECT_EQ(Eval(interp, "set {b(y thing)}"), "space value");
}

TEST(TclParserEdge, SemicolonInsideBracesLiteral) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "set x {a;b}"), "a;b");
}

TEST(TclParserEdge, BracketInsideQuotesRuns) {
  Interp interp;
  Eval(interp, "proc f {} {return ran}");
  EXPECT_EQ(Eval(interp, "set x \"result: [f]\""), "result: ran");
}

TEST(TclParserEdge, CommandSubstMultipleCommands) {
  Interp interp;
  // The bracket evaluates a full script; its result is the last command's.
  EXPECT_EQ(Eval(interp, "set x [set a 1; set b 2]"), "2");
}

TEST(TclParserEdge, DeeplyNestedBrackets) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "expr [expr [expr [expr 1+1]+1]+1]"), "4");
}

TEST(TclParserEdge, WhitespaceOnlyWordsVanish) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "   set    x     spaced   "), "spaced");
}

TEST(TclParserEdge, EvalRoundTripThroughList) {
  Interp interp;
  // Building a command as a list and eval'ing it preserves odd arguments.
  Eval(interp, "set cmd [list set target {a value with spaces}]");
  Eval(interp, "eval $cmd");
  EXPECT_EQ(Eval(interp, "set target"), "a value with spaces");
}

TEST(TclControl, ReturnFromForeach) {
  Interp interp;
  Eval(interp, "proc find {needle list} {foreach x $list {if {$x == $needle} {return found}}; return missing}");
  EXPECT_EQ(Eval(interp, "find b {a b c}"), "found");
  EXPECT_EQ(Eval(interp, "find z {a b c}"), "missing");
}

TEST(TclControl, NestedLoopsBreakInner) {
  Interp interp;
  Eval(interp,
       "set hits 0\n"
       "for {set i 0} {$i < 3} {incr i} {\n"
       "  foreach j {a b c} {\n"
       "    incr hits\n"
       "    break\n"
       "  }\n"
       "}");
  EXPECT_EQ(Eval(interp, "set hits"), "3");
}

TEST(TclInfo, CmdCountMonotone) {
  Interp interp;
  std::size_t c1 = interp.CommandCount();
  Eval(interp, "set a 1");
  std::size_t c2 = interp.CommandCount();
  Eval(interp, "for {set i 0} {$i < 5} {incr i} {}");
  std::size_t c3 = interp.CommandCount();
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2 + 5, c3);  // the loop body counts per iteration
}

TEST(TclMisc, SourceCommand) {
  Interp interp;
  std::string path = "/tmp/wtcl_source_test.tcl";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("set from_file 42\n", f);
    fclose(f);
  }
  Eval(interp, "source " + path);
  EXPECT_EQ(Eval(interp, "set from_file"), "42");
  ::remove(path.c_str());
  EXPECT_EQ(interp.Eval("source /no/such/file.tcl").code, Status::kError);
}

TEST(TclMisc, GlobalEvalFromNestedFrame) {
  Interp interp;
  Eval(interp, "proc f {} {set local only-here}");
  Result r = interp.GlobalEval("set g global-eval");
  ASSERT_TRUE(r.ok());
  std::string value;
  EXPECT_TRUE(interp.GetGlobalVar("g", &value));
}

// --- Golden errorInfo traces -------------------------------------------------
// Exact multi-level shapes, pinned byte-for-byte. The quoted commands are the
// SOURCE text of each failing invocation ("leaf $v", braces intact), matching
// what Tcl quotes — not the substituted argv.

std::string ErrorInfoOf(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_EQ(r.code, Status::kError) << script;
  std::string info;
  EXPECT_TRUE(interp.GetGlobalVar("errorInfo", &info));
  return info;
}

TEST(TclErrorInfo, NestedProcsQuoteSourceText) {
  Interp interp;
  std::string info = ErrorInfoOf(interp,
                                 "proc leaf {v} {error boom}\n"
                                 "proc mid {v} {leaf $v}\n"
                                 "mid 3");
  EXPECT_EQ(info,
            "boom\n"
            "    while executing\n"
            "\"error boom\" (line 1, level 3)\n"
            "    while executing\n"
            "\"leaf $v\" (line 1, level 2)\n"
            "    while executing\n"
            "\"mid 3\" (line 3, level 1)");
}

TEST(TclErrorInfo, ForeachBodyKeepsItsLevel) {
  Interp interp;
  std::string info = ErrorInfoOf(interp, "foreach v {1 2 3} {error boom}");
  EXPECT_EQ(info,
            "boom\n"
            "    while executing\n"
            "\"error boom\" (line 1, level 2)\n"
            "    while executing\n"
            "\"foreach v {1 2 3} {error boom}\" (line 1, level 1)");
}

TEST(TclErrorInfo, WhileAndIfBodiesAddNoLevel) {
  // Tcl's byte-compiled while/for/if add no trace level of their own; only
  // the failing command inside the body appears.
  Interp interp;
  std::string info = ErrorInfoOf(interp,
                                 "set v 0\n"
                                 "while {$v < 3} {incr v\n"
                                 "error boom}");
  EXPECT_EQ(info,
            "boom\n"
            "    while executing\n"
            "\"error boom\" (line 2, level 2)");
  std::string info2 = ErrorInfoOf(interp, "if {1} {error boom2}");
  EXPECT_EQ(info2,
            "boom2\n"
            "    while executing\n"
            "\"error boom2\" (line 1, level 2)");
}

TEST(TclErrorInfo, WhileOwnErrorsKeepTheLevel) {
  // Errors in while's own processing (arity) still quote the while command.
  Interp interp;
  std::string info = ErrorInfoOf(interp, "while {1}");
  EXPECT_NE(info.find("\"while {1}\""), std::string::npos) << info;
}

TEST(TclErrorInfo, CachedSecondRunTraceIsIdentical) {
  // The same failing script through the compile-cache hit path must build
  // the same trace byte-for-byte.
  Interp interp;
  Eval(interp, "proc leaf {v} {error boom}\nproc mid {v} {leaf $v}");
  std::string first = ErrorInfoOf(interp, "mid 3");
  std::string second = ErrorInfoOf(interp, "mid 3");
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"leaf $v\""), std::string::npos) << first;
}

}  // namespace
}  // namespace wtcl
