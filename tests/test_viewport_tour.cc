// Viewport scrolling with auto-created scrollbars, and a "grand tour"
// integration test assembling every widget class in one application.
#include <gtest/gtest.h>

#include "src/core/wafe.h"

namespace {

class ViewportTest : public ::testing::Test {
 protected:
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_TRUE(r.ok()) << script << ": " << r.value;
    return r.value;
  }
  wafe::Wafe wafe_;
};

TEST_F(ViewportTest, OverflowCreatesVerticalScrollbar) {
  Eval("viewport vp topLevel allowVert true width 100 height 80");
  Eval("label tall vp width 80 height 400");
  Eval("realize");
  xtk::Widget* bar = wafe_.app().FindWidget("vp.vertical");
  ASSERT_NE(bar, nullptr);
  EXPECT_EQ(bar->widget_class()->name, "Scrollbar");
  // The thumb size reflects the visible fraction (80/400 = 0.2).
  EXPECT_NEAR(bar->GetFloat("shown", 1.0), 0.2, 0.01);
}

TEST_F(ViewportTest, NoScrollbarWhenContentFits) {
  Eval("viewport vp topLevel allowVert true width 100 height 80");
  Eval("label small vp width 80 height 40");
  Eval("realize");
  EXPECT_EQ(wafe_.app().FindWidget("vp.vertical"), nullptr);
}

TEST_F(ViewportTest, ScrollbarClickScrollsContent) {
  Eval("viewport vp topLevel allowVert true width 100 height 80");
  Eval("label tall vp width 80 height 400");
  Eval("realize");
  xtk::Widget* bar = wafe_.app().FindWidget("vp.vertical");
  ASSERT_NE(bar, nullptr);
  xtk::Widget* tall = wafe_.app().FindWidget("tall");
  EXPECT_EQ(tall->y(), 0);
  // Click halfway down the scrollbar: content scrolls to ~half of the
  // overflow (400-80 = 320, so y ~ -160).
  xsim::Point p = wafe_.app().display().RootPosition(bar->window());
  wafe_.app().display().InjectButtonPress(p.x + 3, p.y + 40, 1);
  wafe_.app().ProcessPending();
  EXPECT_LT(tall->y(), -100);
  EXPECT_GT(tall->y(), -220);
}

TEST_F(ViewportTest, ForceBarsCreatesBarEvenWhenFitting) {
  Eval("viewport vp topLevel allowVert true forceBars true width 100 height 80");
  Eval("label small vp width 80 height 40");
  Eval("realize");
  EXPECT_NE(wafe_.app().FindWidget("vp.vertical"), nullptr);
}

// --- Grand tour -----------------------------------------------------------------------

TEST(GrandTour, EveryWidgetClassInOneApplication) {
  wafe::Wafe app;
  wtcl::Result r = app.Eval(
      "paned main topLevel\n"
      "form header main\n"
      "label title header label {Grand Tour} borderWidth 0\n"
      "menuButton fileBtn header fromHoriz title label File menuName fileMenu\n"
      "simpleMenu fileMenu topLevel\n"
      "smeBSB openItem fileMenu label Open\n"
      "smeLine sep fileMenu\n"
      "smeBSB quitItem fileMenu label Quit callback quit\n"
      "box toolbar main orientation horizontal\n"
      "command run toolbar label Run\n"
      "toggle opt toolbar label Verbose\n"
      "grip handle toolbar\n"
      "form body main\n"
      "list items body list {alpha,beta,gamma}\n"
      "viewport vp body fromHoriz items allowVert true width 120 height 60\n"
      "asciiText editor vp editType edit width 110 height 200 string {text}\n"
      "scrollbar sb body fromHoriz vp length 60\n"
      "stripChart chart body fromVert items width 120 height 30\n"
      "barGraph bars body fromVert vp width 120 height 30\n"
      "lineGraph lines body fromVert bars width 120 height 30\n"
      "graph net body fromHoriz chart width 150 height 80\n"
      "dialog ask topLevel unmanaged label {Sure?} value {yes}\n"
      "realize");
  ASSERT_TRUE(r.ok()) << r.value;
  // Everything exists and realized widgets have windows.
  std::vector<std::string> names = app.app().WidgetNames();
  EXPECT_GE(names.size(), 20u);
  for (const char* name :
       {"main", "header", "title", "fileBtn", "toolbar", "run", "opt", "handle", "body",
        "items", "vp", "editor", "sb", "chart", "bars", "lines", "net"}) {
    xtk::Widget* w = app.app().FindWidget(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_TRUE(w->realized()) << name;
  }
  // Exercise a few interactions across the tree.
  app.Eval("graphAddEdge net a b");
  app.Eval("plotterSetData bars {1 2 3}");
  app.Eval("stripChartAddValue chart 5");
  app.Eval("listHighlight items 1");
  EXPECT_EQ(app.Eval("listShowCurrent items cur").value, "1");
  app.Eval("sV title label {Changed}");
  EXPECT_EQ(app.Eval("gV title label").value, "Changed");
  // Destroy the whole tree cleanly.
  app.Eval("destroyWidget main");
  EXPECT_EQ(app.app().FindWidget("editor"), nullptr);
}

}  // namespace
