// Second-generation observability (src/obs): request-scoped spans across the
// comm -> tcl -> xt -> xsim round trip, the slow-span watchdog, loop-lag
// probe, Prometheus exposition, and the fault flight recorder.
#include <gtest/gtest.h>
#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"

namespace wafe {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      names.push_back(name);
    }
  }
  ::closedir(d);
  return names;
}

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "wafe_obs_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return "";
  }
  return buf.data();
}

// Every test starts from a clean slate and leaves observability (including
// the watchdog and the flight recorder) off for the rest of the suite.
class ObsSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wobs::SetMetricsEnabled(true);
    wobs::Registry::Instance().ResetMetrics();
    wobs::Registry::Instance().ring().Clear();
  }

  void TearDown() override {
    wobs::SetTraceEnabled(false);
    wobs::SetMetricsEnabled(false);
    wobs::SetSlowThresholdNs(0);
    wobs::SetFlightDir("");
    wobs::Registry::Instance().ring().SetCapacity(wobs::TraceRing::kDefaultCapacity);
  }

  std::string Eval(Wafe& wafe, const std::string& script) {
    wtcl::Result r = wafe.Eval(script);
    EXPECT_TRUE(r.ok()) << "script: " << script << "\nerror: " << r.value;
    return r.value;
  }

  std::uint64_t Metric(const std::string& name) {
    std::uint64_t value = 0;
    EXPECT_TRUE(wobs::Registry::Instance().GetMetric(name, &value)) << name;
    return value;
  }

  // Writes one %-line into the frontend the way a backend would.
  void SendProtocolLine(Wafe& wafe, const std::string& line) {
    int to_frontend[2];
    ASSERT_EQ(::pipe(to_frontend), 0);
    wafe.frontend().AdoptBackend(to_frontend[0], -1);
    std::string data = line + "\n";
    ASSERT_EQ(::write(to_frontend[1], data.data(), data.size()),
              static_cast<ssize_t>(data.size()));
    EXPECT_EQ(wafe.frontend().OnBackendReadable(), 1);
    ::close(to_frontend[1]);
  }
};

// --- Request-scoped spans (the tentpole acceptance check) ---------------------

// One scripted %-line whose eval dispatches a queued click: the comm span,
// the Tcl eval, the callback, and the damage flush must share one request id
// and nest inside the protocol-line span.
TEST_F(ObsSpanTest, PercentLineSpansShareOneRequestIdAndNest) {
  Wafe wafe;
  Eval(wafe, "command hello topLevel callback {setValues hello label done}");
  Eval(wafe, "realize");
  // Queue a click but don't dispatch it: the %-line's `sync` will, so the
  // dispatch, callback, and flush all run inside the request's extent.
  xtk::Widget* hello = wafe.app().FindWidget("hello");
  ASSERT_NE(hello, nullptr);
  xsim::Point p = wafe.app().display().RootPosition(hello->window());
  wafe.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  wafe.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);

  wobs::SetTraceEnabled(true);
  SendProtocolLine(wafe, "%sync");
  wobs::SetTraceEnabled(false);

  std::vector<wobs::TraceEvent> events = wobs::Registry::Instance().ring().Snapshot();
  const wobs::TraceEvent* root = nullptr;
  for (const wobs::TraceEvent& e : events) {
    if (e.name == "protocol-line") {
      root = &e;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->request_id, 0u);
  EXPECT_EQ(root->lane, wobs::kRequestLane);
  EXPECT_STREQ(root->category, "comm");

  auto find = [&](const char* category, const std::string& name) {
    const wobs::TraceEvent* found = nullptr;
    for (const wobs::TraceEvent& e : events) {
      if (e.request_id == root->request_id && e.name == name &&
          std::string_view(e.category) == category) {
        found = &e;
      }
    }
    return found;
  };
  const wobs::TraceEvent* eval_span = find("tcl", "sync");
  const wobs::TraceEvent* callback_span = find("xt", "callback");
  const wobs::TraceEvent* flush_span = find("xsim", "damage-flush");
  ASSERT_NE(eval_span, nullptr) << "no tcl eval span with the request id";
  ASSERT_NE(callback_span, nullptr) << "no callback span with the request id";
  ASSERT_NE(flush_span, nullptr) << "no damage-flush span with the request id";
  for (const wobs::TraceEvent* child : {eval_span, callback_span, flush_span}) {
    EXPECT_GE(child->ts_ns, root->ts_ns);
    EXPECT_LE(child->ts_ns + child->dur_ns, root->ts_ns + root->dur_ns);
    EXPECT_EQ(child->lane, wobs::kRequestLane);
  }

  // The request also lands in the end-to-end latency accounting, overall and
  // under its command name.
  EXPECT_EQ(Metric("comm.request.latency"), 1u);
  EXPECT_EQ(Metric("comm.request.command.sync"), 1u);
}

TEST_F(ObsSpanTest, RequestIdsIncreaseAcrossLines) {
  Wafe wafe;
  wobs::SetTraceEnabled(true);
  int to_frontend[2];
  ASSERT_EQ(::pipe(to_frontend), 0);
  wafe.frontend().AdoptBackend(to_frontend[0], -1);
  std::string data = "%set a 1\n%set b 2\n";
  ASSERT_EQ(::write(to_frontend[1], data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  EXPECT_EQ(wafe.frontend().OnBackendReadable(), 2);
  ::close(to_frontend[1]);
  wobs::SetTraceEnabled(false);

  std::vector<std::uint64_t> ids;
  for (const wobs::TraceEvent& e : wobs::Registry::Instance().ring().Snapshot()) {
    if (e.name == "protocol-line") {
      ids.push_back(e.request_id);
    }
  }
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_GT(ids[0], 0u);
  EXPECT_EQ(ids[1], ids[0] + 1);
  EXPECT_EQ(wobs::CurrentRequestId(), 0u);  // scope closed
  EXPECT_EQ(wobs::CurrentLane(), wobs::kMainLane);
}

TEST_F(ObsSpanTest, ChromeExportStampsPidLaneAndRequestArgs) {
  Wafe wafe;
  wobs::SetTraceEnabled(true);
  SendProtocolLine(wafe, "%set x 41");
  std::string json = Eval(wafe, "traceDump - json");
  wobs::SetTraceEnabled(false);
  EXPECT_NE(json.find("\"pid\":" + std::to_string(::getpid()) + ","),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":" + std::to_string(wobs::kRequestLane)),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"req\":"), std::string::npos);
  EXPECT_EQ(json.find("\"pid\":1,"), std::string::npos);
  // The text dump carries the id too.
  std::string text = Eval(wafe, "traceDump - text");
  EXPECT_NE(text.find(" req="), std::string::npos);
}

// --- Deterministic dumps ------------------------------------------------------

TEST_F(ObsSpanTest, MetricsDumpSectionsAreSortedByName) {
  std::string dump = wobs::MetricsText();
  std::istringstream in(dump);
  std::string line;
  std::string previous;
  bool in_counters = false;
  std::size_t counters_seen = 0;
  while (std::getline(in, line)) {
    if (line == "== counters ==") {
      in_counters = true;
      continue;
    }
    if (line.rfind("==", 0) == 0) {
      in_counters = false;
      continue;
    }
    if (in_counters) {
      std::string name = line.substr(0, line.find(' '));
      EXPECT_LT(previous, name) << "counters out of order near " << name;
      previous = name;
      ++counters_seen;
    }
  }
  EXPECT_GT(counters_seen, 20u);
}

// --- Prometheus exposition ----------------------------------------------------

// Format check: every line is either "# TYPE <name> <kind>" or
// "<name>[{<labels>}] <integer>", names legal, histograms cumulative.
TEST_F(ObsSpanTest, PrometheusExpositionParses) {
  Wafe wafe;
  Eval(wafe, "set x 1");
  std::string text = Eval(wafe, "metrics prometheus");
  ASSERT_FALSE(text.empty());

  auto valid_name = [](const std::string& name) {
    if (name.empty() || name.rfind("wafe_", 0) != 0) {
      return false;
    }
    for (char c : name) {
      bool clean = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9') || c == '_';
      if (!clean) {
        return false;
      }
    }
    return true;
  };

  std::istringstream in(text);
  std::string line;
  std::size_t types = 0;
  std::size_t samples = 0;
  std::uint64_t bucket_cumulative = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, name, kind;
      fields >> hash >> keyword >> name >> kind;
      EXPECT_EQ(hash, "#");
      EXPECT_EQ(keyword, "TYPE");
      EXPECT_TRUE(valid_name(name)) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      ++types;
      bucket_cumulative = 0;
      continue;
    }
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    for (char c : value) {
      EXPECT_TRUE(c >= '0' && c <= '9') << line;
    }
    std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      // le-buckets must be cumulative (non-decreasing).
      std::uint64_t count = std::stoull(value);
      EXPECT_GE(count, bucket_cumulative) << line;
      bucket_cumulative = count;
      name.resize(brace);
    }
    EXPECT_TRUE(valid_name(name)) << line;
    ++samples;
  }
  EXPECT_GT(types, 20u);
  EXPECT_GT(samples, types);
  EXPECT_NE(text.find("wafe_tcl_commands "), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("wafe_tcl_command_duration_ns_sum "), std::string::npos);
}

// --- Labeled histograms -------------------------------------------------------

TEST_F(ObsSpanTest, LabeledHistogramBoundsItsLabelSet) {
  static wobs::LabeledHistogram labeled("test.obs.labeled", 2);
  labeled.Record("alpha", 10);
  labeled.Record("beta", 20);
  labeled.Record("gamma", 30);  // over the cap: folds into .other
  labeled.Record("delta/../x", 40);
  EXPECT_EQ(labeled.label_count(), 2u);
  EXPECT_EQ(Metric("test.obs.labeled.alpha"), 1u);
  EXPECT_EQ(Metric("test.obs.labeled.beta"), 1u);
  EXPECT_EQ(Metric("test.obs.labeled.other"), 2u);
  std::uint64_t unused = 0;
  EXPECT_FALSE(wobs::Registry::Instance().GetMetric("test.obs.labeled.gamma", &unused));
}

// --- TraceRing wraparound (satellite) -----------------------------------------

TEST(TraceRingTest, NoDropsAtExactlyCapacity) {
  wobs::TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ring.PushInstant("test", "tick", i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  ring.PushInstant("test", "tick", 5);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.Snapshot().front().ts_ns, 2u);
}

TEST(TraceRingTest, SnapshotStaysOrderedAfterMultipleWraps) {
  wobs::TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 11; ++i) {  // wraps the 4-slot ring twice
    ring.PushInstant("test", "tick", i);
  }
  EXPECT_EQ(ring.dropped(), 7u);
  std::vector<wobs::TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 8 + i);  // newest window, oldest first
  }
}

TEST(TraceRingTest, ConcurrentPushesAccountForEveryEvent) {
  wobs::TraceRing ring(256);
  auto pusher = [&ring](const char* name) {
    for (std::uint64_t i = 0; i < 5000; ++i) {
      ring.PushComplete("test", name, i, 1);
    }
  };
  std::thread a(pusher, "a");
  std::thread b(pusher, "b");
  a.join();
  b.join();
  EXPECT_EQ(ring.size(), 256u);
  EXPECT_EQ(ring.size() + ring.dropped(), 10000u);
  for (const wobs::TraceEvent& e : ring.Snapshot()) {
    EXPECT_TRUE(e.name == "a" || e.name == "b");
  }
}

// --- Slow-span watchdog -------------------------------------------------------

TEST_F(ObsSpanTest, SlowWatchdogCountsSpansOverThreshold) {
  // The watchdog works with metrics and tracing both off: its own threshold
  // is the gate.
  wobs::SetMetricsEnabled(false);
  std::uint64_t before = 0;
  ASSERT_TRUE(wobs::Registry::Instance().GetMetric("obs.slow.spans", &before));

  wobs::SetSlowThresholdNs(1000);  // 1µs
  {
    wobs::ScopedEvent span("test", "deliberately-slow");
    std::uint64_t until = wobs::NowNs() + 50000;  // 50µs busy wait
    while (wobs::NowNs() < until) {
    }
  }
  std::uint64_t after = 0;
  ASSERT_TRUE(wobs::Registry::Instance().GetMetric("obs.slow.spans", &after));
  EXPECT_EQ(after, before + 1);

  // A span under the threshold stays unflagged.
  wobs::SetSlowThresholdNs(1000000000);  // 1s
  { wobs::ScopedEvent span("test", "fast"); }
  ASSERT_TRUE(wobs::Registry::Instance().GetMetric("obs.slow.spans", &after));
  EXPECT_EQ(after, before + 1);

  // Disarming clears the enable bit entirely (back to the free fast path).
  wobs::SetSlowThresholdNs(0);
  EXPECT_FALSE(wobs::AnyEnabled());
}

TEST_F(ObsSpanTest, ObsSlowThresholdCommandRoundTrips) {
  Wafe wafe;
  EXPECT_EQ(Eval(wafe, "obsSlowThreshold"), "0");
  Eval(wafe, "obsSlowThreshold 2.5");
  EXPECT_EQ(wobs::SlowThresholdNs(), 2500000u);
  EXPECT_EQ(Eval(wafe, "obsSlowThreshold"), "2.5");
  EXPECT_EQ(Eval(wafe, "obsSlowThreshold 0"), "0");
  EXPECT_EQ(wobs::SlowThresholdNs(), 0u);
  EXPECT_EQ(wafe.Eval("obsSlowThreshold -3").code, wtcl::Status::kError);
  EXPECT_EQ(wafe.Eval("obsSlowThreshold fast").code, wtcl::Status::kError);
}

// --- Event-loop health --------------------------------------------------------

TEST_F(ObsSpanTest, LoopLagRecordedBetweenPolls) {
  Wafe wafe;
  std::uint64_t before = Metric("xt.loop.lag");
  // Two polling iterations: the second poll entry measures the busy stretch
  // since the first poll returned.
  wafe.app().AddTimeout(1, [] {});
  wafe.app().RunOneIteration(/*block=*/true);
  wafe.app().AddTimeout(1, [] {});
  wafe.app().RunOneIteration(/*block=*/true);
  EXPECT_GT(Metric("xt.loop.lag"), before);
}

// --- Flight recorder ----------------------------------------------------------

TEST_F(ObsSpanTest, FlightRecordCarriesTraceAndMetrics) {
  std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  wobs::SetFlightDir(dir);
  EXPECT_EQ(wobs::FlightDir(), dir);
  wobs::SetTraceEnabled(true);
  Wafe wafe;
  Eval(wafe, "set x 1");

  std::string path = wobs::DumpFlightRecord("unit-test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir + "/flight-", 0), 0u);
  std::string record = ReadFile(path);
  EXPECT_NE(record.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(record.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(record.find("wafe_tcl_commands"), std::string::npos);

  // Rate-limited: an immediate second dump is suppressed, force overrides.
  EXPECT_EQ(wobs::DumpFlightRecord("again"), "");
  EXPECT_FALSE(wobs::DumpFlightRecord("again", /*force=*/true).empty());
  std::uint64_t suppressed = 0;
  ASSERT_TRUE(wobs::Registry::Instance().GetMetric("obs.flight.suppressed", &suppressed));
  EXPECT_GE(suppressed, 1u);

  // Empty directory turns the recorder off entirely.
  wobs::SetFlightDir("");
  EXPECT_EQ(wobs::DumpFlightRecord("off", /*force=*/true), "");
}

TEST_F(ObsSpanTest, FlightCommandsControlTheRecorder) {
  Wafe wafe;
  EXPECT_EQ(wafe.Eval("flightDump").code, wtcl::Status::kError);  // no dir
  std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  Eval(wafe, "flightDir " + dir);
  EXPECT_EQ(Eval(wafe, "flightDir"), dir);
  std::string path = Eval(wafe, "flightDump manual");
  EXPECT_EQ(::access(path.c_str(), R_OK), 0);
  EXPECT_NE(path.find("-manual.json"), std::string::npos);
}

TEST_F(ObsSpanTest, EvalLimitTripLeavesFlightRecord) {
  std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  wobs::SetFlightDir(dir);
  wobs::SetTraceEnabled(true);
  Wafe wafe;
  wafe.interp().set_max_steps(500);
  wtcl::Result r = wafe.Eval("while {1} {set x 1}");
  EXPECT_EQ(r.code, wtcl::Status::kError);
  wobs::SetTraceEnabled(false);
  wobs::SetFlightDir("");

  bool found = false;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("flight-", 0) == 0 &&
        name.find("eval-limit-steps") != std::string::npos) {
      found = true;
      std::string record = ReadFile(dir + "/" + name);
      EXPECT_NE(record.find("\"reason\":\"eval-limit-steps\""), std::string::npos);
      EXPECT_NE(record.find("\"cat\":\"tcl\""), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no eval-limit flight record in " << dir;
}

// --- Periodic Prometheus snapshots (WAFE_METRICS_DUMP) ------------------------

TEST_F(ObsSpanTest, PeriodicMetricsDumpWritesSnapshots) {
  std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  std::string path = dir + "/metrics.prom";
  ::setenv("WAFE_METRICS_DUMP", (path + ",10").c_str(), 1);
  Wafe wafe;
  ::unsetenv("WAFE_METRICS_DUMP");
  EXPECT_TRUE(wobs::MetricsEnabled());
  Eval(wafe, "set x 1");
  // The 10ms repeating timer fires inside the loop; poll until the snapshot
  // lands (bounded: a few seconds at most).
  std::uint64_t deadline = wobs::NowNs() + 5000000000ull;
  while (::access(path.c_str(), R_OK) != 0 && wobs::NowNs() < deadline) {
    wafe.app().RunOneIteration(/*block=*/true);
  }
  ASSERT_EQ(::access(path.c_str(), R_OK), 0);
  std::string snapshot = ReadFile(path);
  EXPECT_NE(snapshot.find("# TYPE wafe_tcl_commands counter"), std::string::npos);
}

}  // namespace
}  // namespace wafe
