// Simulated display server: windows, events, input injection, drawing,
// colors, fonts, keysyms, pixmap decoding.
#include <gtest/gtest.h>

#include "src/xsim/display.h"

namespace xsim {
namespace {

TEST(Color, NamedLookup) {
  EXPECT_EQ(LookupColor("red"), MakePixel(255, 0, 0));
  EXPECT_EQ(LookupColor("blue"), MakePixel(0, 0, 255));
  EXPECT_EQ(LookupColor("tomato"), MakePixel(255, 99, 71));
  EXPECT_EQ(LookupColor("Navy Blue"), MakePixel(0, 0, 128));  // case/space insensitive
  EXPECT_FALSE(LookupColor("notacolor").has_value());
  EXPECT_FALSE(LookupColor("").has_value());
}

TEST(Color, HexSpecs) {
  EXPECT_EQ(LookupColor("#ff0000"), MakePixel(255, 0, 0));
  EXPECT_EQ(LookupColor("#f00"), MakePixel(255, 0, 0));
  EXPECT_EQ(LookupColor("#ffff00000000"), MakePixel(255, 0, 0));
  EXPECT_FALSE(LookupColor("#12345").has_value());
  EXPECT_FALSE(LookupColor("#zzz").has_value());
}

TEST(Color, FormatRoundTrip) {
  Pixel p = MakePixel(18, 52, 86);
  EXPECT_EQ(FormatColor(p), "#123456");
  EXPECT_EQ(LookupColor(FormatColor(p)), p);
}

TEST(Font, DefaultRegistryHasClassicFonts) {
  FontRegistry& reg = FontRegistry::Default();
  EXPECT_NE(reg.Open("fixed"), nullptr);
  EXPECT_NE(reg.Open("6x13"), nullptr);
  EXPECT_GT(reg.size(), 100u);  // families x weights x slants x sizes
}

TEST(Font, XlfdWildcardMatch) {
  FontRegistry& reg = FontRegistry::Default();
  FontPtr lucida = reg.Open("*b&h-lucida-medium-r*14*");
  ASSERT_NE(lucida, nullptr);
  EXPECT_FALSE(lucida->bold);
  FontPtr bold = reg.Open("*b&h-lucida-bold-r*14*");
  ASSERT_NE(bold, nullptr);
  EXPECT_TRUE(bold->bold);
  EXPECT_EQ(reg.Open("*no-such-family*"), nullptr);
}

TEST(Font, XlfdMatchingIsCaseInsensitive) {
  FontRegistry& reg = FontRegistry::Default();
  // XLFD matching ignores case in both pattern and name.
  FontPtr upper = reg.Open("-ADOBE-HELVETICA-MEDIUM-R-NORMAL--12-120-75-75-P-0-ISO8859-1");
  ASSERT_NE(upper, nullptr);
  FontPtr lower = reg.Open("-adobe-helvetica-medium-r-normal--12-120-75-75-p-0-iso8859-1");
  ASSERT_NE(lower, nullptr);
  EXPECT_EQ(upper.get(), lower.get());
  FontPtr mixed = reg.Open("*Adobe-Helvetica-Bold*14*");
  ASSERT_NE(mixed, nullptr);
  EXPECT_TRUE(mixed->bold);
  EXPECT_NE(reg.Open("FIXED"), nullptr);
}

TEST(Font, XlfdWildcardFieldEdgeCases) {
  FontRegistry& reg = FontRegistry::Default();
  // '*' spans multiple fields (including the dashes between them).
  EXPECT_NE(reg.Open("-adobe-times-*-24-*"), nullptr);
  EXPECT_NE(reg.Open("*times*"), nullptr);
  // Adjacent and trailing stars collapse.
  EXPECT_NE(reg.Open("**times**"), nullptr);
  EXPECT_NE(reg.Open("-adobe-times*"), nullptr);
  // '?' matches exactly one character: "time?" matches "times" but a
  // two-char hole does not.
  EXPECT_NE(reg.Open("*-time?-*"), nullptr);
  EXPECT_EQ(reg.Open("*-time??-*"), nullptr);
  // A bare '*' matches everything; the empty pattern only an empty name.
  EXPECT_NE(reg.Open("*"), nullptr);
  EXPECT_EQ(reg.Open(""), nullptr);
  // Patterns are anchored: a prefix without a trailing star is no match.
  EXPECT_EQ(reg.Open("-adobe-times"), nullptr);
  EXPECT_EQ(reg.Open("fix"), nullptr);
}

TEST(Font, XlfdSlantLettersMatchTheRealDistribution) {
  FontRegistry& reg = FontRegistry::Default();
  // helvetica and courier ship oblique ("o"), times and lucida italic ("i").
  FontPtr oblique = reg.Open("-adobe-helvetica-medium-o-*-12-*");
  ASSERT_NE(oblique, nullptr);
  EXPECT_TRUE(oblique->italic);
  FontPtr courier_oblique = reg.Open("*courier-bold-o-*");
  ASSERT_NE(courier_oblique, nullptr);
  EXPECT_TRUE(courier_oblique->italic);
  FontPtr italic = reg.Open("-adobe-times-medium-i-*-12-*");
  ASSERT_NE(italic, nullptr);
  EXPECT_TRUE(italic->italic);
  EXPECT_NE(reg.Open("*b&h-lucida-medium-i-*"), nullptr);
  // The wrong letter for the family finds nothing.
  EXPECT_EQ(reg.Open("-adobe-helvetica-medium-i-*"), nullptr);
  EXPECT_EQ(reg.Open("-adobe-times-medium-o-*"), nullptr);
  // Upright faces are plain.
  FontPtr upright = reg.Open("-adobe-helvetica-medium-r-*-12-*");
  ASSERT_NE(upright, nullptr);
  EXPECT_FALSE(upright->italic);
}

TEST(Font, ListReturnsEveryMatchNotJustTheFirst) {
  FontRegistry& reg = FontRegistry::Default();
  std::vector<std::string> all_times = reg.List("*-times-*");
  // 2 weights x 2 slants x 6 sizes.
  EXPECT_EQ(all_times.size(), 24u);
  for (const std::string& name : all_times) {
    EXPECT_NE(name.find("-times-"), std::string::npos);
  }
  EXPECT_TRUE(reg.List("*nothing-matches-this*").empty());
}

TEST(Font, MetricsScaleWithSize) {
  FontRegistry& reg = FontRegistry::Default();
  FontPtr small = reg.Open("*helvetica-medium-r*-8-*");
  FontPtr large = reg.Open("*helvetica-medium-r*-24-*");
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  EXPECT_LT(small->Height(), large->Height());
  EXPECT_LT(small->TextWidth("hello"), large->TextWidth("hello"));
}

TEST(Keysym, PaperKeyEchoTriple) {
  // The paper's xev example: typing "w!" prints
  //   198 w w / 174 Shift_L / 197 ! exclam
  EXPECT_EQ(KeysymToKeycode(AsciiToKeysym('w')), 198);
  EXPECT_EQ(KeysymToString(AsciiToKeysym('w')), "w");
  EXPECT_EQ(KeysymToKeycode(kKeyShiftL), 174);
  EXPECT_EQ(KeysymToString(kKeyShiftL), "Shift_L");
  EXPECT_EQ(KeysymToKeycode(AsciiToKeysym('!')), 197);
  EXPECT_EQ(KeysymToString(AsciiToKeysym('!')), "exclam");
}

TEST(Keysym, RoundTrips) {
  for (char c : std::string("abcxyz0189 ;,./")) {
    KeySym sym = AsciiToKeysym(c);
    KeyCode code = KeysymToKeycode(sym);
    EXPECT_NE(code, 0) << "char " << c;
    bool shifted = false;
    EXPECT_EQ(KeycodeToKeysym(code, shifted), sym) << "char " << c;
  }
}

TEST(Keysym, StringToKeysym) {
  EXPECT_EQ(StringToKeysym("Return"), kKeyReturn);
  EXPECT_EQ(StringToKeysym("exclam"), AsciiToKeysym('!'));
  EXPECT_EQ(StringToKeysym("a"), AsciiToKeysym('a'));
  EXPECT_FALSE(StringToKeysym("NotAKey").has_value());
}

TEST(Keysym, AsciiConversions) {
  EXPECT_EQ(KeysymToAscii(AsciiToKeysym('x')), 'x');
  EXPECT_EQ(KeysymToAscii(kKeyReturn), '\r');
  EXPECT_FALSE(KeysymToAscii(kKeyShiftL).has_value());
}

// --- Window tree -------------------------------------------------------------

class DisplayTest : public ::testing::Test {
 protected:
  Display display_;
};

TEST_F(DisplayTest, CreateAndDestroyWindows) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{10, 10, 100, 100});
  WindowId b = display_.CreateWindow(a, Rect{5, 5, 20, 20});
  EXPECT_TRUE(display_.Exists(a));
  EXPECT_TRUE(display_.Exists(b));
  EXPECT_EQ(display_.Parent(b), a);
  ASSERT_EQ(display_.Children(a).size(), 1u);
  display_.DestroyWindow(a);
  EXPECT_FALSE(display_.Exists(a));
  EXPECT_FALSE(display_.Exists(b));  // destroyed recursively
}

TEST_F(DisplayTest, DestroyEmitsDestroyNotifyBottomUp) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 10, 10});
  WindowId b = display_.CreateWindow(a, Rect{0, 0, 5, 5});
  display_.DestroyWindow(a);
  Event first = display_.NextEvent();
  Event second = display_.NextEvent();
  EXPECT_EQ(first.type, EventType::kDestroyNotify);
  EXPECT_EQ(first.window, b);
  EXPECT_EQ(second.window, a);
}

TEST_F(DisplayTest, MapGeneratesExposeWhenViewable) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  display_.MapWindow(a);
  Event map_event = display_.NextEvent();
  Event expose = display_.NextEvent();
  EXPECT_EQ(map_event.type, EventType::kMapNotify);
  EXPECT_EQ(expose.type, EventType::kExpose);
  EXPECT_EQ(expose.area.width, 50u);
}

TEST_F(DisplayTest, ViewabilityRequiresAncestors) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  WindowId b = display_.CreateWindow(a, Rect{0, 0, 10, 10});
  display_.MapWindow(b);
  EXPECT_TRUE(display_.IsMapped(b));
  EXPECT_FALSE(display_.IsViewable(b));
  display_.MapWindow(a);
  EXPECT_TRUE(display_.IsViewable(b));
}

TEST_F(DisplayTest, RootPositionAccumulates) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{10, 20, 100, 100});
  WindowId b = display_.CreateWindow(a, Rect{5, 6, 10, 10});
  Point p = display_.RootPosition(b);
  EXPECT_EQ(p.x, 15);
  EXPECT_EQ(p.y, 26);
}

TEST_F(DisplayTest, HitTestFindsDeepestViewable) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{10, 10, 100, 100});
  WindowId b = display_.CreateWindow(a, Rect{20, 20, 30, 30});
  display_.MapWindow(a);
  display_.MapWindow(b);
  EXPECT_EQ(display_.WindowAtPoint(35, 35), b);
  EXPECT_EQ(display_.WindowAtPoint(15, 15), a);
  EXPECT_EQ(display_.WindowAtPoint(500, 500), display_.root());
}

TEST_F(DisplayTest, StackingOrderWins) {
  WindowId below = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  WindowId above = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  display_.MapWindow(below);
  display_.MapWindow(above);
  EXPECT_EQ(display_.WindowAtPoint(10, 10), above);
  display_.RaiseWindow(below);
  EXPECT_EQ(display_.WindowAtPoint(10, 10), below);
}

// --- Input injection ------------------------------------------------------------

TEST_F(DisplayTest, ButtonPressTargetsWindowUnderPointer) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{10, 10, 100, 100});
  display_.MapWindow(a);
  while (display_.Pending()) {
    display_.NextEvent();
  }
  display_.InjectButtonPress(50, 60, 1);
  // Crossing events may precede the press.
  Event event;
  do {
    event = display_.NextEvent();
  } while (event.type != EventType::kButtonPress);
  EXPECT_EQ(event.window, a);
  EXPECT_EQ(event.x, 40);  // window-relative
  EXPECT_EQ(event.y, 50);
  EXPECT_EQ(event.x_root, 50);
  EXPECT_EQ(event.button, 1u);
}

TEST_F(DisplayTest, MotionEmitsEnterLeavePairs) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  WindowId b = display_.CreateWindow(display_.root(), Rect{100, 0, 50, 50});
  display_.MapWindow(a);
  display_.MapWindow(b);
  while (display_.Pending()) {
    display_.NextEvent();
  }
  display_.InjectMotion(10, 10);  // root -> a
  display_.InjectMotion(110, 10);  // a -> b
  std::vector<Event> events;
  while (display_.Pending()) {
    events.push_back(display_.NextEvent());
  }
  // leave root, enter a, motion(a), leave a, enter b, motion(b)
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].type, EventType::kLeaveNotify);
  EXPECT_EQ(events[0].window, display_.root());
  EXPECT_EQ(events[1].type, EventType::kEnterNotify);
  EXPECT_EQ(events[1].window, a);
  EXPECT_EQ(events[2].type, EventType::kMotionNotify);
  EXPECT_EQ(events[3].type, EventType::kLeaveNotify);
  EXPECT_EQ(events[3].window, a);
  EXPECT_EQ(events[4].type, EventType::kEnterNotify);
  EXPECT_EQ(events[4].window, b);
  EXPECT_EQ(events[5].type, EventType::kMotionNotify);
}

TEST_F(DisplayTest, KeyEventsGoToFocusWindow) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  display_.MapWindow(a);
  display_.SetInputFocus(a);
  while (display_.Pending()) {
    display_.NextEvent();
  }
  display_.InjectKeyPress(AsciiToKeysym('q'));
  Event event = display_.NextEvent();
  EXPECT_EQ(event.type, EventType::kKeyPress);
  EXPECT_EQ(event.window, a);
  EXPECT_EQ(event.keysym, AsciiToKeysym('q'));
  EXPECT_EQ(event.keycode, KeysymToKeycode(AsciiToKeysym('q')));
}

TEST_F(DisplayTest, InjectTextAddsShiftForUppercase) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  display_.MapWindow(a);
  display_.SetInputFocus(a);
  while (display_.Pending()) {
    display_.NextEvent();
  }
  display_.InjectText("a!");
  std::vector<Event> events;
  while (display_.Pending()) {
    events.push_back(display_.NextEvent());
  }
  // a: press+release; !: shift-press, press, release, shift-release.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].keysym, AsciiToKeysym('a'));
  EXPECT_EQ(events[2].keysym, kKeyShiftL);
  EXPECT_EQ(events[3].keysym, AsciiToKeysym('!'));
  EXPECT_EQ(events[3].state & kShiftMask, kShiftMask);
}

TEST_F(DisplayTest, PointerGrabRedirectsEvents) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  WindowId popup = display_.CreateWindow(display_.root(), Rect{200, 200, 50, 50});
  display_.MapWindow(a);
  display_.MapWindow(popup);
  display_.GrabPointer(popup, /*owner_events=*/false);
  while (display_.Pending()) {
    display_.NextEvent();
  }
  display_.InjectButtonPress(10, 10, 1);  // over `a`, but grabbed
  Event event;
  do {
    event = display_.NextEvent();
  } while (event.type != EventType::kButtonPress);
  EXPECT_EQ(event.window, popup);
  display_.UngrabPointer();
  display_.InjectButtonPress(10, 10, 1);
  do {
    event = display_.NextEvent();
  } while (event.type != EventType::kButtonPress);
  EXPECT_EQ(event.window, a);
}

TEST_F(DisplayTest, TimeAdvancesPerInjection) {
  std::uint64_t before = display_.Now();
  display_.InjectMotion(1, 1);
  display_.InjectMotion(2, 2);
  EXPECT_EQ(display_.Now(), before + 2);
}

// --- Drawing ----------------------------------------------------------------------

TEST_F(DisplayTest, FillRectPaintsFramebufferClipped) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{10, 10, 20, 20});
  display_.MapWindow(a);
  display_.FillRect(a, Rect{0, 0, 100, 100}, MakePixel(255, 0, 0));  // clipped to 20x20
  EXPECT_EQ(display_.PixelAt(15, 15), MakePixel(255, 0, 0));
  EXPECT_EQ(display_.PixelAt(35, 35), kBlackPixel);  // outside the window
}

TEST_F(DisplayTest, DrawTextRecordsOps) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 200, 40});
  display_.MapWindow(a);
  FontPtr font = FontRegistry::Default().Open("fixed");
  display_.DrawText(a, 5, 20, "hello world", font, kBlackPixel);
  EXPECT_TRUE(display_.WindowShowsText(a, "hello world"));
  EXPECT_FALSE(display_.WindowShowsText(a, "goodbye"));
  std::vector<std::string> texts = display_.VisibleText();
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_EQ(texts[0], "hello world");
}

TEST_F(DisplayTest, ClearWindowUsesBackground) {
  WindowId a =
      display_.CreateWindow(display_.root(), Rect{0, 0, 10, 10}, 0, MakePixel(0, 0, 255));
  display_.MapWindow(a);
  display_.ClearWindow(a);
  EXPECT_EQ(display_.PixelAt(5, 5), MakePixel(0, 0, 255));
}

TEST_F(DisplayTest, LineDrawsEndpoints) {
  WindowId a = display_.CreateWindow(display_.root(), Rect{0, 0, 50, 50});
  display_.MapWindow(a);
  display_.DrawLine(a, Point{0, 0}, Point{9, 9}, MakePixel(0, 255, 0));
  EXPECT_EQ(display_.PixelAt(0, 0), MakePixel(0, 255, 0));
  EXPECT_EQ(display_.PixelAt(9, 9), MakePixel(0, 255, 0));
  EXPECT_EQ(display_.PixelAt(5, 5), MakePixel(0, 255, 0));
}

// --- Pixmaps --------------------------------------------------------------------------

constexpr char kXbm[] = R"(#define test_width 8
#define test_height 2
static char test_bits[] = {
   0x01, 0x80};
)";

TEST(Pixmap, ParsesXbm) {
  PixmapPtr p = ParseXbm(kXbm);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->width, 8u);
  EXPECT_EQ(p->height, 2u);
  EXPECT_EQ(p->At(0, 0), kBlackPixel);   // LSB of 0x01
  EXPECT_EQ(p->At(1, 0), kWhitePixel);
  EXPECT_EQ(p->At(7, 1), kBlackPixel);   // MSB of 0x80
  EXPECT_TRUE(p->mask.empty());
}

constexpr char kXpm[] = R"(static char *test[] = {
"3 2 3 1",
"  c None",
". c red",
"# c #0000ff",
".#.",
" # ",
};
)";

TEST(Pixmap, ParsesXpmWithTransparency) {
  PixmapPtr p = ParseXpm(kXpm);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->width, 3u);
  EXPECT_EQ(p->height, 2u);
  EXPECT_EQ(p->At(0, 0), MakePixel(255, 0, 0));
  EXPECT_EQ(p->At(1, 0), MakePixel(0, 0, 255));
  EXPECT_FALSE(p->Opaque(0, 1));  // None -> transparent
  EXPECT_TRUE(p->Opaque(1, 1));
}

TEST(Pixmap, FallbackTriesXbmThenXpm) {
  EXPECT_NE(ParseBitmapOrPixmap(kXbm), nullptr);
  EXPECT_NE(ParseBitmapOrPixmap(kXpm), nullptr);
  EXPECT_EQ(ParseBitmapOrPixmap("garbage"), nullptr);
}

TEST(Pixmap, RejectsMalformed) {
  EXPECT_EQ(ParseXbm("#define w 8"), nullptr);
  EXPECT_EQ(ParseXpm("static char *x[] = {\"1 1 1 1\"};"), nullptr);  // missing colors/rows
  EXPECT_EQ(ParseXpm("static char *x[] = {\"1 1 1 1\", \"? c nosuchcolor\", \"?\"};"),
            nullptr);
}

}  // namespace
}  // namespace xsim
