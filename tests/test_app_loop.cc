// AppContext edge cases: timers, input-source mutation from handlers, popup
// stacking and grabs, unrealize/re-realize cycles, and multi-display event
// processing.
#include <gtest/gtest.h>
#include <unistd.h>

#include "src/xaw/athena.h"
#include "src/xt/app.h"

namespace {

using xtk::AppContext;
using xtk::Widget;

class AppLoopTest : public ::testing::Test {
 protected:
  AppLoopTest() : app_("wafe", "Wafe") {
    xaw::RegisterAthenaClasses(app_);
    std::string error;
    top_ = app_.CreateShell("topLevel", "ApplicationShell", &app_.display(), {}, &error);
  }
  AppContext app_;
  Widget* top_ = nullptr;
};

TEST_F(AppLoopTest, TimersFireInDeadlineOrder) {
  std::vector<int> fired;
  app_.AddTimeout(30, [&] { fired.push_back(2); });
  app_.AddTimeout(5, [&] { fired.push_back(1); });
  while (fired.size() < 2) {
    app_.RunOneIteration(true);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST_F(AppLoopTest, TimerCanReArmItself) {
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 3) {
      app_.AddTimeout(1, tick);
    }
  };
  app_.AddTimeout(1, tick);
  while (count < 3) {
    app_.RunOneIteration(true);
  }
  EXPECT_EQ(count, 3);
}

TEST_F(AppLoopTest, RemoveTimeoutInsideHandler) {
  int other_fired = 0;
  int id2 = app_.AddTimeout(50, [&] { ++other_fired; });
  app_.AddTimeout(1, [&] { app_.RemoveTimeout(id2); });
  // Pump past both deadlines.
  for (int i = 0; i < 10; ++i) {
    app_.RunOneIteration(true);
    if (i > 5) {
      ::usleep(10000);
      app_.RunOneIteration(false);
    }
  }
  EXPECT_EQ(other_fired, 0);
}

TEST_F(AppLoopTest, InputHandlerCanRemoveItself) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  int id = -1;
  id = app_.AddInput(fds[0], [&](int fd) {
    char buffer[16];
    ssize_t ignored = ::read(fd, buffer, sizeof(buffer));
    (void)ignored;
    ++fired;
    app_.RemoveInput(id);
  });
  ssize_t ignored = ::write(fds[1], "x", 1);
  (void)ignored;
  app_.RunOneIteration(true);
  ignored = ::write(fds[1], "y", 1);
  (void)ignored;
  app_.RunOneIteration(false);
  EXPECT_EQ(fired, 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(AppLoopTest, MainLoopBreaksFromTimer) {
  app_.AddTimeout(1, [&] { app_.BreakMainLoop(); });
  app_.MainLoop();  // returns because of the break
  SUCCEED();
}

TEST_F(AppLoopTest, MainLoopEndsWhenNoSources) {
  app_.MainLoop();  // no inputs, no timers: drains events and returns
  SUCCEED();
}

// --- Popups -----------------------------------------------------------------------

TEST_F(AppLoopTest, StackedPopupsGrabTransfers) {
  std::string error;
  Widget* menu1 = app_.CreateWidget("menu1", "TransientShell", top_, {}, false, &error);
  app_.CreateWidget("c1", "Label", menu1, {}, true, &error);
  Widget* menu2 = app_.CreateWidget("menu2", "TransientShell", top_, {}, false, &error);
  app_.CreateWidget("c2", "Label", menu2, {}, true, &error);
  app_.RealizeWidget(top_);
  app_.Popup(menu1, xtk::GrabKind::kExclusive);
  app_.Popup(menu2, xtk::GrabKind::kExclusive);
  EXPECT_TRUE(app_.IsPoppedUp(menu1));
  EXPECT_TRUE(app_.IsPoppedUp(menu2));
  EXPECT_EQ(app_.display().PointerGrab(), menu2->window());
  app_.Popdown(menu2);
  EXPECT_FALSE(app_.IsPoppedUp(menu2));
  // menu1's grab is gone (simplified single-slot grabs) but it stays up.
  EXPECT_TRUE(app_.IsPoppedUp(menu1));
  app_.Popdown(menu1);
}

TEST_F(AppLoopTest, PopupRealizesLazily) {
  std::string error;
  Widget* late = app_.CreateWidget("late", "TransientShell", top_, {}, false, &error);
  app_.CreateWidget("inside", "Label", late, {}, true, &error);
  app_.RealizeWidget(top_);
  EXPECT_FALSE(late->realized()) << "popup shells realize at popup time";
  app_.Popup(late, xtk::GrabKind::kNone);
  EXPECT_TRUE(late->realized());
  EXPECT_TRUE(app_.display().IsViewable(late->window()));
}

TEST_F(AppLoopTest, DestroyPoppedUpShellCleans) {
  std::string error;
  Widget* popup = app_.CreateWidget("p", "TransientShell", top_, {}, false, &error);
  app_.CreateWidget("inside", "Label", popup, {}, true, &error);
  app_.RealizeWidget(top_);
  app_.Popup(popup, xtk::GrabKind::kExclusive);
  app_.DestroyWidget(popup);
  EXPECT_FALSE(app_.IsPoppedUp(popup));
  EXPECT_EQ(app_.display().PointerGrab(), xsim::kNoWindow);
}

// --- Realize cycles -----------------------------------------------------------------

TEST_F(AppLoopTest, UnrealizeAndRealizeAgain) {
  std::string error;
  Widget* label = app_.CreateWidget("l", "Label", top_, {{"label", "persistent"}}, true,
                                    &error);
  app_.RealizeWidget(top_);
  xsim::WindowId first_window = label->window();
  app_.UnrealizeWidget(top_);
  EXPECT_FALSE(label->realized());
  EXPECT_EQ(label->window(), xsim::kNoWindow);
  EXPECT_EQ(label->GetString("label"), "persistent");  // resources survive
  app_.RealizeWidget(top_);
  EXPECT_TRUE(label->realized());
  EXPECT_NE(label->window(), first_window);  // fresh windows
  EXPECT_TRUE(app_.display().IsViewable(label->window()));
}

// --- Multi-display pumping ------------------------------------------------------------

TEST_F(AppLoopTest, ProcessPendingDrainsAllDisplays) {
  std::string error;
  Widget* top2 =
      app_.CreateShell("top2", "ApplicationShell", &app_.OpenDisplay("second:0"), {}, &error);
  app_.CreateWidget("l1", "Label", top_, {}, true, &error);
  app_.CreateWidget("l2", "Label", top2, {}, true, &error);
  app_.RealizeWidget(top_);
  app_.RealizeWidget(top2);
  // Both displays now have map/expose events pending or processed; inject
  // more on both and drain.
  app_.display().InjectMotion(5, 5);
  app_.OpenDisplay("second:0").InjectMotion(6, 6);
  std::size_t n = app_.ProcessPending();
  EXPECT_GT(n, 0u);
  EXPECT_FALSE(app_.display().Pending());
  EXPECT_FALSE(app_.OpenDisplay("second:0").Pending());
}

TEST_F(AppLoopTest, RedrawCountAdvancesOnExpose) {
  std::string error;
  Widget* label = app_.CreateWidget("l", "Label", top_, {}, true, &error);
  app_.RealizeWidget(top_);
  std::size_t before = app_.redraw_count();
  xsim::Event expose;
  expose.type = xsim::EventType::kExpose;
  expose.window = label->window();
  app_.display().SendEvent(expose);
  app_.ProcessPending();
  EXPECT_GT(app_.redraw_count(), before);
}

}  // namespace
