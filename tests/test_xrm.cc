// Xrm resource database: parsing, precedence, merging.
#include <gtest/gtest.h>

#include "src/xt/xrm.h"

namespace xtk {
namespace {

using Path = std::vector<std::pair<std::string, std::string>>;

TEST(Xrm, ParsesAndQueriesLooseBinding) {
  ResourceDatabase db;
  ASSERT_TRUE(db.MergeLine("*foreground: blue"));
  Path path{{"wafe", "Wafe"}, {"hello", "Label"}};
  auto value = db.Query(path, {"foreground", "Foreground"});
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "blue");
}

TEST(Xrm, TightBindingMustAnchor) {
  ResourceDatabase db;
  ASSERT_TRUE(db.MergeLine("wafe.hello.foreground: green"));
  Path path{{"wafe", "Wafe"}, {"hello", "Label"}};
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "green");
  // A different app name does not match a tight root.
  Path other{{"other", "Other"}, {"hello", "Label"}};
  EXPECT_FALSE(db.Query(other, {"foreground", "Foreground"}).has_value());
}

TEST(Xrm, ClassComponentsMatch) {
  ResourceDatabase db;
  ASSERT_TRUE(db.MergeLine("*Label.foreground: red"));
  Path label_path{{"wafe", "Wafe"}, {"l1", "Label"}};
  Path command_path{{"wafe", "Wafe"}, {"c1", "Command"}};
  EXPECT_EQ(db.Query(label_path, {"foreground", "Foreground"}).value_or(""), "red");
  EXPECT_FALSE(db.Query(command_path, {"foreground", "Foreground"}).has_value());
}

TEST(Xrm, NameBeatsClass) {
  ResourceDatabase db;
  db.MergeLine("*Label.foreground: red");
  db.MergeLine("*special.foreground: gold");
  Path path{{"wafe", "Wafe"}, {"special", "Label"}};
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "gold");
}

TEST(Xrm, TightBeatsLoose) {
  ResourceDatabase db;
  db.MergeLine("*foreground: loose");
  db.MergeLine("wafe.form.button.foreground: tight");
  Path path{{"wafe", "Wafe"}, {"form", "Form"}, {"button", "Command"}};
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "tight");
}

TEST(Xrm, MoreSpecificEarlierLevelWins) {
  ResourceDatabase db;
  db.MergeLine("wafe*foreground: app-level");
  db.MergeLine("*button.foreground: widget-level");
  Path path{{"wafe", "Wafe"}, {"button", "Command"}};
  // The first entry matches "wafe" by name at level 0; the second skips
  // level 0. Name-match at the earliest level wins.
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "app-level");
}

TEST(Xrm, LaterMergeOverridesSameBinding) {
  ResourceDatabase db;
  db.MergeLine("*foreground: first");
  db.MergeLine("*foreground: second");
  Path path{{"wafe", "Wafe"}, {"l", "Label"}};
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "second");
  EXPECT_EQ(db.size(), 1u);  // replaced, not duplicated
}

TEST(Xrm, MergeStringSkipsCommentsAndBlanks) {
  ResourceDatabase db;
  std::size_t merged = db.MergeString(
      "! a comment\n"
      "\n"
      "*Font: fixed\n"
      "# hash comment\n"
      "*background: red\n");
  EXPECT_EQ(merged, 2u);
}

TEST(Xrm, MalformedLinesRejected) {
  ResourceDatabase db;
  EXPECT_FALSE(db.MergeLine("no colon here"));
  EXPECT_FALSE(db.MergeLine(": empty binding"));
  EXPECT_FALSE(db.MergeLine(""));
}

TEST(Xrm, ValueWhitespaceHandling) {
  ResourceDatabase db;
  db.MergeLine("*label:   Hello World  ");
  Path path{{"wafe", "Wafe"}, {"l", "Label"}};
  // Leading blanks are stripped, interior and trailing preserved.
  EXPECT_EQ(db.Query(path, {"label", "Label"}).value_or(""), "Hello World  ");
}

TEST(Xrm, QuestionMarkMatchesAnyName) {
  ResourceDatabase db;
  db.MergeLine("wafe.?.foreground: qmark");
  Path path{{"wafe", "Wafe"}, {"anything", "Label"}};
  EXPECT_EQ(db.Query(path, {"foreground", "Foreground"}).value_or(""), "qmark");
}

TEST(Xrm, DeepPathLooseMatch) {
  ResourceDatabase db;
  db.MergeLine("*button.background: pink");
  Path path{{"wafe", "Wafe"}, {"paned", "Paned"}, {"form", "Form"}, {"button", "Command"}};
  EXPECT_EQ(db.Query(path, {"background", "Background"}).value_or(""), "pink");
}

TEST(Xrm, ResourceClassMatches) {
  ResourceDatabase db;
  db.MergeLine("*Background: gray");
  Path path{{"wafe", "Wafe"}, {"l", "Label"}};
  EXPECT_EQ(db.Query(path, {"background", "Background"}).value_or(""), "gray");
}

// Precedence sweep: each case lists a winning entry against a fixed path.
struct PrecedenceCase {
  const char* winner;
  const char* loser;
};

class XrmPrecedence : public ::testing::TestWithParam<PrecedenceCase> {};

TEST_P(XrmPrecedence, WinnerBeatsLoser) {
  Path path{{"app", "App"}, {"form", "Form"}, {"ok", "Command"}};
  // Insert in both orders to make sure ordering does not decide.
  for (bool winner_first : {true, false}) {
    ResourceDatabase db;
    if (winner_first) {
      db.MergeLine(std::string(GetParam().winner) + ": W");
      db.MergeLine(std::string(GetParam().loser) + ": L");
    } else {
      db.MergeLine(std::string(GetParam().loser) + ": L");
      db.MergeLine(std::string(GetParam().winner) + ": W");
    }
    EXPECT_EQ(db.Query(path, {"background", "Background"}).value_or(""), "W")
        << GetParam().winner << " should beat " << GetParam().loser;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rules, XrmPrecedence,
    ::testing::Values(PrecedenceCase{"app.form.ok.background", "*background"},
                      PrecedenceCase{"app.form.ok.background", "app*background"},
                      PrecedenceCase{"*ok.background", "*Command.background"},
                      PrecedenceCase{"*Command.background", "*background"},
                      PrecedenceCase{"app*ok.background", "*ok.background"},
                      PrecedenceCase{"*form.ok.background", "*form*background"}));

}  // namespace
}  // namespace xtk
