// AsciiText selection sweep (Button1) -> PRIMARY, insert-selection
// (Button2), StripChart getValue polling, and the Tcl `case` command.
#include <gtest/gtest.h>

#include "src/core/wafe.h"

namespace {

class TextSelectionTest : public ::testing::Test {
 protected:
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_TRUE(r.ok()) << script << ": " << r.value;
    return r.value;
  }
  // Character-cell x coordinate inside the text widget.
  xsim::Position CellX(xtk::Widget* w, int column) {
    xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
    return wafe_.app().display().RootPosition(w->window()).x + 2 +
           static_cast<xsim::Position>(column * static_cast<int>(font->char_width));
  }
  wafe::Wafe wafe_;
};

TEST_F(TextSelectionTest, SweepOwnsPrimary) {
  Eval("asciiText t topLevel editType edit string {hello world} width 200");
  Eval("realize");
  xtk::Widget* t = wafe_.app().FindWidget("t");
  xsim::Position y = wafe_.app().display().RootPosition(t->window()).y + 5;
  // Sweep from column 0 to column 5 ("hello").
  wafe_.app().display().InjectButtonPress(CellX(t, 0), y, 1);
  wafe_.app().display().InjectMotion(CellX(t, 5), y, xsim::kButton1Mask);
  wafe_.app().display().InjectButtonRelease(CellX(t, 5), y, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "hello");
  EXPECT_EQ(Eval("selectionOwner PRIMARY"), "t");
}

TEST_F(TextSelectionTest, ClickMovesInsertionPoint) {
  Eval("asciiText t topLevel editType edit string {abcdef} width 200");
  Eval("realize");
  xtk::Widget* t = wafe_.app().FindWidget("t");
  xsim::Position y = wafe_.app().display().RootPosition(t->window()).y + 5;
  wafe_.app().display().InjectButtonPress(CellX(t, 3), y, 1);
  wafe_.app().display().InjectButtonRelease(CellX(t, 3), y, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("textGetInsertionPoint t"), "3");
}

TEST_F(TextSelectionTest, Button2PastesPrimary) {
  Eval("asciiText src topLevel editType edit string {copy me} width 200");
  Eval("asciiText dst topLevel editType edit string {} width 200");
  Eval("realize");
  Eval("ownSelection src PRIMARY {pasted}");
  xtk::Widget* dst = wafe_.app().FindWidget("dst");
  xsim::Point p = wafe_.app().display().RootPosition(dst->window());
  wafe_.app().display().InjectButtonPress(p.x + 3, p.y + 5, 2);
  wafe_.app().ProcessPending();
  EXPECT_EQ(dst->GetString("string"), "pasted");
}

TEST_F(TextSelectionTest, PasteWithoutSelectionIsNoop) {
  Eval("asciiText dst topLevel editType edit string {} width 200");
  Eval("realize");
  xtk::Widget* dst = wafe_.app().FindWidget("dst");
  xsim::Point p = wafe_.app().display().RootPosition(dst->window());
  wafe_.app().display().InjectButtonPress(p.x + 3, p.y + 5, 2);
  wafe_.app().ProcessPending();
  EXPECT_EQ(dst->GetString("string"), "");
}

TEST_F(TextSelectionTest, MultiLineClickTargetsRow) {
  // Double quotes make Tcl's backslash substitution produce real newlines.
  Eval("asciiText t topLevel editType edit string \"one\\ntwo\\nthree\" width 200 height 60");
  Eval("realize");
  xtk::Widget* t = wafe_.app().FindWidget("t");
  ASSERT_EQ(t->GetString("string"), "one\ntwo\nthree");
  xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
  xsim::Point p = wafe_.app().display().RootPosition(t->window());
  // Click column 1 of the second line.
  wafe_.app().display().InjectButtonPress(
      CellX(t, 1), p.y + 2 + static_cast<xsim::Position>(font->Height()) + 2, 1);
  wafe_.app().display().InjectButtonRelease(
      CellX(t, 1), p.y + 2 + static_cast<xsim::Position>(font->Height()) + 2, 1);
  wafe_.app().ProcessPending();
  EXPECT_EQ(Eval("textGetInsertionPoint t"), "5");  // "one\nt|wo"
}

// --- StripChart polling -------------------------------------------------------------------

TEST_F(TextSelectionTest, StripChartPollsGetValue) {
  Eval("stripChart chart topLevel update 1 getValue "
       "{stripChartAddValue chart 7; set polled 1}");
  Eval("realize");
  // Pump the main loop until the 1-second poll fires.
  for (int i = 0; i < 50 && !wafe_.interp().VarExists("polled"); ++i) {
    wafe_.app().RunOneIteration(true);
  }
  EXPECT_EQ(Eval("set polled"), "1");
  EXPECT_GE(wafe_.app().FindWidget("chart")->GetStringList("_samples").size(), 1u);
}

TEST_F(TextSelectionTest, StripChartWithoutCallbackDoesNotPoll) {
  Eval("stripChart chart topLevel update 1");
  Eval("realize");
  EXPECT_EQ(wafe_.app().FindWidget("chart")->GetLong("_updateTimer", 0), 0);
}

// --- case command --------------------------------------------------------------------------

TEST(TclCase, ClassicForm) {
  wtcl::Interp interp;
  wtcl::Result r = interp.Eval("case abc in {a*} {set r glob} {default} {set r dflt}");
  ASSERT_TRUE(r.ok()) << r.value;
  EXPECT_EQ(r.value, "glob");
}

TEST(TclCase, PatternListMatchesAny) {
  wtcl::Interp interp;
  wtcl::Result r = interp.Eval("case hello {x y hel*} {set r multi} default {set r no}");
  ASSERT_TRUE(r.ok()) << r.value;
  EXPECT_EQ(r.value, "multi");
}

TEST(TclCase, DefaultAndNoMatch) {
  wtcl::Interp interp;
  EXPECT_EQ(interp.Eval("case zzz in {a*} {set r 1} default {set r fallback}").value,
            "fallback");
  EXPECT_EQ(interp.Eval("case zzz in {a*} {set r 1}").value, "");
}

}  // namespace
