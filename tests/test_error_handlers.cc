// Fault containment at the toolkit layer: the push/pop error-handler stack,
// deduplicated warning defaults, the errorProc/warningProc Tcl hooks,
// synthetic X protocol errors on destroyed windows, injected converter and
// allocation faults, and the %-protocol circuit breaker (backend errorLimit)
// including its interaction with supervised respawn.
#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/xsim/display.h"
#include "src/xt/error.h"
#include "src/xt/widget.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace wafe {
namespace {

// --- ErrorContext in isolation ------------------------------------------------------

TEST(ErrorContextTest, PushPopOrderingRoutesToTopHandler) {
  xtk::ErrorContext ec;
  std::vector<std::string> seen;
  ec.PushErrorHandler([&](const xtk::ToolkitError& e) { seen.push_back("A:" + e.name); });
  ec.PushErrorHandler([&](const xtk::ToolkitError& e) { seen.push_back("B:" + e.name); });
  EXPECT_EQ(ec.error_handler_depth(), 2u);

  ec.RaiseError("first", "m");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.back(), "B:first");

  EXPECT_TRUE(ec.PopErrorHandler());
  ec.RaiseError("second", "m");
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.back(), "A:second");

  EXPECT_TRUE(ec.PopErrorHandler());
  EXPECT_EQ(ec.error_handler_depth(), 0u);
  EXPECT_FALSE(ec.PopErrorHandler());
  // Empty stack falls back to the default (which never aborts).
  ec.RaiseError("third", "m");
  EXPECT_EQ(ec.errors_raised(), 3u);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(ErrorContextTest, WarningStackIsIndependentOfErrorStack) {
  xtk::ErrorContext ec;
  int warnings = 0;
  int errors = 0;
  ec.PushWarningHandler([&](const xtk::ToolkitError& e) {
    EXPECT_TRUE(e.warning);
    ++warnings;
  });
  ec.PushErrorHandler([&](const xtk::ToolkitError& e) {
    EXPECT_FALSE(e.warning);
    ++errors;
  });
  ec.RaiseWarning("w", "m");
  ec.RaiseError("e", "m");
  EXPECT_EQ(warnings, 1);
  EXPECT_EQ(errors, 1);
  EXPECT_TRUE(ec.PopWarningHandler());
  EXPECT_EQ(ec.error_handler_depth(), 1u);
}

// The default disposition logs a warning once per (name, message) pair and
// counts the rest as deduplicated.
TEST(ErrorContextTest, DefaultWarningsAreDedupedPerNameMessagePair) {
  xtk::ErrorContext ec;
  ec.RaiseWarning("conversionError", "bad color");
  ec.RaiseWarning("conversionError", "bad color");
  ec.RaiseWarning("conversionError", "bad color");
  ec.RaiseWarning("conversionError", "bad font");  // different message: not a dup
  EXPECT_EQ(ec.warnings_raised(), 4u);
  EXPECT_EQ(ec.warnings_deduped(), 2u);

  ec.ResetWarningDedup();
  ec.RaiseWarning("conversionError", "bad color");
  EXPECT_EQ(ec.warnings_raised(), 5u);
  EXPECT_EQ(ec.warnings_deduped(), 2u);  // fresh after the reset
}

// A handler that itself raises must not recurse: the nested raise goes to
// the default disposition instead of back into the handler.
TEST(ErrorContextTest, RaisingFromInsideAHandlerDoesNotRecurse) {
  xtk::ErrorContext ec;
  int calls = 0;
  ec.PushErrorHandler([&](const xtk::ToolkitError&) {
    ++calls;
    ec.RaiseError("nested", "from inside the handler");
  });
  ec.RaiseError("outer", "m");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ec.errors_raised(), 2u);
}

TEST(ErrorContextTest, AllocCheckFiresOnceAtTheArmedAllocation) {
  xtk::ErrorContext ec;
  EXPECT_TRUE(ec.AllocCheck());  // disarmed: always passes
  ec.faults().alloc_fail_at = 3;
  ec.faults().allocs_seen = 0;
  EXPECT_TRUE(ec.AllocCheck());
  EXPECT_TRUE(ec.AllocCheck());
  EXPECT_FALSE(ec.AllocCheck());  // the third allocation fails...
  EXPECT_TRUE(ec.AllocCheck());   // ...and the fault self-clears
}

// --- Wafe-level fixtures ------------------------------------------------------------

class FaultWafeTest : public ::testing::Test {
 protected:
  ~FaultWafeTest() override { wobs::SetMetricsEnabled(false); }

  std::string Var(Wafe& wafe, const std::string& name) {
    std::string value;
    return wafe.interp().GetVar(name, &value) ? value : std::string("<unset>");
  }

  std::string Metric(Wafe& wafe, const std::string& name) {
    wtcl::Result r = wafe.Eval("metrics get " + name);
    EXPECT_EQ(r.code, wtcl::Status::kOk) << r.value;
    return r.value;
  }
};

// The evalLimit command: report-all, report-one, set, reject bad kinds.
TEST_F(FaultWafeTest, EvalLimitCommandReportsAndSets) {
  Wafe wafe;
  EXPECT_EQ(wafe.Eval("evalLimit").value, "depth 1000 steps 0 ms 0");
  ASSERT_EQ(wafe.Eval("evalLimit steps 5000").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit depth 64").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("evalLimit ms 250").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("evalLimit steps").value, "5000");
  EXPECT_EQ(wafe.Eval("evalLimit").value, "depth 64 steps 5000 ms 250");
  EXPECT_EQ(wafe.interp().max_nesting(), 64);
  EXPECT_EQ(wafe.interp().max_steps(), 5000u);
  EXPECT_EQ(wafe.interp().max_eval_ms(), 250);
  EXPECT_EQ(wafe.Eval("evalLimit bogus 1").code, wtcl::Status::kError);
  EXPECT_EQ(wafe.Eval("evalLimit depth x").code, wtcl::Status::kError);
}

// WAFE_EVAL_LIMIT configures a fresh interpreter at construction.
TEST_F(FaultWafeTest, EvalLimitEnvironmentVariableApplies) {
  ASSERT_EQ(::setenv("WAFE_EVAL_LIMIT", "depth=32,steps=12345,ms=99", 1), 0);
  {
    Wafe wafe;
    EXPECT_EQ(wafe.interp().max_nesting(), 32);
    EXPECT_EQ(wafe.interp().max_steps(), 12345u);
    EXPECT_EQ(wafe.interp().max_eval_ms(), 99);
  }
  ASSERT_EQ(::unsetenv("WAFE_EVAL_LIMIT"), 0);
}

// errorProc: a synthetic X error injected through xtFault lands in the Tcl
// hook with errorName/errorMessage set; an empty script restores defaults.
TEST_F(FaultWafeTest, ErrorProcReceivesInjectedXError) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("errorProc {set gotName $errorName; set gotMsg $errorMessage}").code,
            wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("errorProc").value,
            "set gotName $errorName; set gotMsg $errorMessage");

  ASSERT_EQ(wafe.Eval("xtFault xerror=BadWindow").code, wtcl::Status::kOk);
  EXPECT_EQ(Var(wafe, "gotName"), "BadWindow");
  EXPECT_NE(Var(wafe, "gotMsg").find("xtFault"), std::string::npos);
  EXPECT_EQ(Metric(wafe, "xt.error.badwindow"), "1");
  EXPECT_EQ(Metric(wafe, "xsim.protocol.errors"), "1");

  ASSERT_EQ(wafe.Eval("xtFault xerror=BadDrawable").code, wtcl::Status::kOk);
  EXPECT_EQ(Var(wafe, "gotName"), "BadDrawable");
  EXPECT_EQ(Metric(wafe, "xt.error.baddrawable"), "1");

  // Restore the default handler; raising must not touch the old variables.
  ASSERT_EQ(wafe.Eval("errorProc {}").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("set gotName stale").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("xtFault xerror=BadWindow").code, wtcl::Status::kOk);
  EXPECT_EQ(Var(wafe, "gotName"), "stale");
}

// A failing errorProc must not hide the original condition or recurse; the
// error count still reflects the raise.
TEST_F(FaultWafeTest, FailingErrorProcFallsBackToDefault) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("errorProc {noSuchHookCommand}").code, wtcl::Status::kOk);
  std::size_t before = wafe.app().errors().errors_raised();
  ASSERT_EQ(wafe.Eval("xtFault xerror=BadWindow").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.app().errors().errors_raised(), before + 1);
}

// warningProc sees converter-level warnings.
TEST_F(FaultWafeTest, WarningProcReceivesConversionWarnings) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("warningProc {set gotWarn $warningName}").code, wtcl::Status::kOk);
  wafe.app().errors().RaiseWarning("conversionError", "synthetic");
  EXPECT_EQ(Var(wafe, "gotWarn"), "conversionError");
}

// Acceptance: operating on a destroyed window raises a synthetic BadWindow /
// BadDrawable through the handler stack — observable, never fatal.
TEST_F(FaultWafeTest, UseAfterDestroyRaisesBadWindowAndBadDrawable) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("label victim topLevel label gone-soon").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("realize").code, wtcl::Status::kOk);
  xtk::Widget* victim = wafe.app().FindWidget("victim");
  ASSERT_NE(victim, nullptr);
  xsim::WindowId window = victim->window();
  ASSERT_NE(window, xsim::kNoWindow);

  ASSERT_EQ(wafe.Eval("destroyWidget victim").code, wtcl::Status::kOk);
  wafe.app().ProcessPending();
  ASSERT_FALSE(wafe.app().display().Exists(window));
  // Normal teardown itself must not have raised protocol errors.
  EXPECT_EQ(Metric(wafe, "xsim.protocol.errors"), "0");

  std::size_t before = wafe.app().errors().errors_raised();
  wafe.app().display().MapWindow(window);  // use after destroy
  EXPECT_EQ(Metric(wafe, "xt.error.badwindow"), "1");
  wafe.app().display().FillRect(window, {0, 0, 10, 10}, 0);
  EXPECT_EQ(Metric(wafe, "xt.error.baddrawable"), "1");
  EXPECT_EQ(wafe.app().errors().errors_raised(), before + 2);
  // The session is still fully functional.
  EXPECT_EQ(wafe.Eval("label survivor topLevel").code, wtcl::Status::kOk);
}

// Satellite: a bad color in the resource database falls back to the class
// default with a single warning; the second widget hitting the same value
// dedups instead of warning again.
TEST_F(FaultWafeTest, BadResourceDbColorWarnsOnceAndFallsBack) {
  Wafe wafe;
  wafe.app().resource_db().MergeLine("*background: noSuchColorValue");
  std::size_t warned = wafe.app().errors().warnings_raised();
  std::size_t deduped = wafe.app().errors().warnings_deduped();

  ASSERT_EQ(wafe.Eval("label one topLevel").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("label two topLevel").code, wtcl::Status::kOk);
  EXPECT_NE(wafe.app().FindWidget("one"), nullptr);
  EXPECT_NE(wafe.app().FindWidget("two"), nullptr);

  EXPECT_GE(wafe.app().errors().warnings_raised(), warned + 2);
  EXPECT_GT(wafe.app().errors().warnings_deduped(), deduped);

  // An explicit bad argument stays a hard error — no silent fallback.
  EXPECT_EQ(wafe.Eval("label three topLevel background noSuchColorValue").code,
            wtcl::Status::kError);
  EXPECT_EQ(wafe.app().FindWidget("three"), nullptr);
}

// Injected converter faults fail the next N conversions deterministically.
TEST_F(FaultWafeTest, ConvertFailInjectionFailsNextConversions) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("xtFault convertFail=1").code, wtcl::Status::kOk);
  EXPECT_NE(wafe.Eval("xtFault status").value.find("convertFail 1"), std::string::npos);
  wtcl::Result r = wafe.Eval("label faulted topLevel background red");
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("injected converter fault"), std::string::npos);
  EXPECT_EQ(wafe.app().FindWidget("faulted"), nullptr);
  // The fault was consumed; the same creation now succeeds.
  EXPECT_EQ(wafe.Eval("label faulted topLevel background red").code, wtcl::Status::kOk);
}

// An allocation fault during widget creation unwinds with full cleanup: the
// half-created widget is rolled back and later creations succeed.
TEST_F(FaultWafeTest, AllocFaultDuringCreationRollsBack) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("xtFault allocFailAt=1").code, wtcl::Status::kOk);
  wtcl::Result r = wafe.Eval("label doomed topLevel");
  ASSERT_EQ(r.code, wtcl::Status::kError);
  EXPECT_NE(r.value.find("allocation failed"), std::string::npos);
  EXPECT_EQ(wafe.app().FindWidget("doomed"), nullptr);
  EXPECT_EQ(wafe.Eval("xtFault clear").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("label doomed topLevel").code, wtcl::Status::kOk);
  EXPECT_NE(wafe.app().FindWidget("doomed"), nullptr);
}

// --- Circuit breaker over an adopted channel ----------------------------------------

class CircuitTest : public FaultWafeTest {
 protected:
  CircuitTest() {
    int to_wafe[2];
    int from_wafe[2];
    EXPECT_EQ(::pipe(to_wafe), 0);
    EXPECT_EQ(::pipe(from_wafe), 0);
    backend_write_ = to_wafe[1];
    backend_read_ = from_wafe[0];
    wafe_.set_backend_output(true);
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~CircuitTest() override {
    ::close(backend_write_);
    ::close(backend_read_);
  }

  void SendLines(const std::string& data) {
    ssize_t ignored = ::write(backend_write_, data.data(), data.size());
    (void)ignored;
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  std::string ReadFromWafe() {
    char buffer[8192];
    ssize_t n = ::read(backend_read_, buffer, sizeof(buffer));
    return n > 0 ? std::string(buffer, static_cast<std::size_t>(n)) : std::string();
  }

  Wafe wafe_;
  int backend_write_ = -1;
  int backend_read_ = -1;
};

// A failed %-line is reported back over the channel as a single "error ..."
// line carrying the errorInfo trace, and the frontend keeps going.
TEST_F(CircuitTest, FailedProtocolLineReportsErrorTraceToBackend) {
  SendLines("%noSuchCommand a b\n%set after 1\n");
  std::string report = ReadFromWafe();
  EXPECT_EQ(report.rfind("error ", 0), 0u);
  EXPECT_NE(report.find("noSuchCommand"), std::string::npos);
  EXPECT_NE(report.find("while executing"), std::string::npos);
  EXPECT_EQ(report.find('\n'), report.size() - 1);  // one line, trace flattened
  EXPECT_EQ(Var(wafe_, "after"), "1");
  EXPECT_EQ(wafe_.frontend().eval_errors(), 1u);
  EXPECT_FALSE(wafe_.quit_requested());
}

// backend errorLimit: consecutive failures trip the breaker; a success in
// between resets the consecutive count.
TEST_F(CircuitTest, SuccessResetsConsecutiveErrorCount) {
  ASSERT_EQ(wafe_.Eval("backend errorLimit 3").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe_.Eval("backend errorLimit").value, "3");
  SendLines("%bad one\n%bad two\n%set ok 1\n%bad three\n%bad four\n");
  EXPECT_EQ(wafe_.frontend().eval_errors(), 4u);
  EXPECT_EQ(wafe_.frontend().consecutive_eval_errors(), 2);
  EXPECT_TRUE(wafe_.frontend().backend_alive());
  EXPECT_FALSE(wafe_.quit_requested());
  EXPECT_NE(wafe_.frontend().StatusText().find("errorLimit 3"), std::string::npos);
}

TEST_F(CircuitTest, ConsecutiveErrorsTripTheBreaker) {
  ASSERT_EQ(wafe_.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend errorLimit 3").code, wtcl::Status::kOk);
  SendLines("%bad one\n%bad two\n%bad three\n%set never 1\n");
  EXPECT_FALSE(wafe_.frontend().backend_alive());
  EXPECT_TRUE(wafe_.quit_requested());  // no supervision: the session ends
  EXPECT_EQ(Metric(wafe_, "comm.eval.circuit.tripped"), "1");
  EXPECT_EQ(Metric(wafe_, "comm.eval.errors"), "3");
  EXPECT_EQ(Var(wafe_, "backendExitReason"), "error-limit");
}

TEST_F(CircuitTest, ErrorLimitZeroDisablesTheBreaker) {
  ASSERT_EQ(wafe_.Eval("backend errorLimit 0").code, wtcl::Status::kOk);
  std::string lines;
  for (int i = 0; i < 50; ++i) {
    lines += "%bad line\n";
  }
  SendLines(lines);
  EXPECT_TRUE(wafe_.frontend().backend_alive());
  EXPECT_EQ(wafe_.frontend().eval_errors(), 50u);
  EXPECT_EQ(wafe_.Eval("backend errorLimit -1").code, wtcl::Status::kError);
}

// Acceptance: tripping the breaker leaves a flight record containing the
// offending request's spans, written before the degradation proceeds.
TEST_F(CircuitTest, TrippedBreakerLeavesFlightRecord) {
  std::string tmpl = ::testing::TempDir() + "wafe_flight_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  std::string dir = buf.data();
  wobs::SetFlightDir(dir);
  wobs::SetTraceEnabled(true);

  ASSERT_EQ(wafe_.Eval("backend errorLimit 2").code, wtcl::Status::kOk);
  SendLines("%bad one\n%bad two\n");
  wobs::SetTraceEnabled(false);
  wobs::SetFlightDir("");
  EXPECT_FALSE(wafe_.frontend().backend_alive());

  std::string record;
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind("flight-", 0) == 0 &&
        name.find("circuit-breaker") != std::string::npos) {
      std::ifstream in(dir + "/" + name);
      std::ostringstream contents;
      contents << in.rdbuf();
      record = contents.str();
    }
  }
  ::closedir(d);
  ASSERT_FALSE(record.empty()) << "no circuit-breaker flight record in " << dir;
  // The record holds the spans of the request that tripped the breaker.
  EXPECT_NE(record.find("\"reason\":\"circuit-breaker\""), std::string::npos);
  EXPECT_NE(record.find("protocol-line"), std::string::npos);
  EXPECT_NE(record.find("\"args\":{\"req\":"), std::string::npos);
  EXPECT_NE(record.find("wafe_comm_eval_circuit_tripped"), std::string::npos);
}

// --- Circuit breaker + supervision over a real backend ------------------------------

class FaultBackendTest : public FaultWafeTest {
 protected:
  bool PumpUntil(Wafe& wafe, const std::function<bool()>& done, int timeout_ms = 5000) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      wafe.app().RunOneIteration(false);
      ::usleep(1000);
    }
    return true;
  }

  bool Spawn(Wafe& wafe, const std::string& mode,
             const std::vector<std::string>& extra = {}) {
    std::string error;
    wafe.set_backend_output(true);
    std::vector<std::string> args{mode};
    args.insert(args.end(), extra.begin(), extra.end());
    bool ok = wafe.frontend().SpawnBackend(WAFE_TEST_BACKEND, args, &error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

// Acceptance: the breaker hands a persistently-faulty backend to the
// supervisor — it is respawned, faults again, and once the restart budget
// is spent the session ends instead of wedging on an endless error stream.
TEST_F(FaultBackendTest, TrippedBreakerTriggersSupervisedRestartThenGivesUp) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend supervise on").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend maxRestarts 1").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend backoff 30 100").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend errorLimit 5").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("set deaths 0").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backendExitCommand {set deaths [expr $deaths + 1]}").code,
            wtcl::Status::kOk);
  ASSERT_TRUE(Spawn(wafe, "badlines", {"50"}));

  // First trip: the supervisor replaces the backend.
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    return wafe.frontend().restart_count() == 1 && wafe.frontend().backend_alive();
  }));
  EXPECT_EQ(Var(wafe, "backendExitReason"), "error-limit");
  EXPECT_EQ(Var(wafe, "deaths"), "1");

  // The replacement faults identically; the budget is spent, session ends.
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  EXPECT_FALSE(wafe.frontend().backend_alive());
  EXPECT_EQ(Var(wafe, "deaths"), "2");
  EXPECT_EQ(Metric(wafe, "comm.eval.circuit.tripped"), "2");
  // At least the 5 consecutive failures per trip; teardown drains whatever
  // else the backend had already buffered, so the count may be higher.
  std::string evals = Metric(wafe, "comm.eval.errors");
  EXPECT_GE(std::stoi(evals), 10);
}

}  // namespace
}  // namespace wafe
