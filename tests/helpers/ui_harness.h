// Event-injection / golden-render harness for UI tests: drives a Wafe
// instance through the simulated display with synthetic pointer and key
// events addressed to named widgets, captures what callbacks/actions write
// to the backend's stdin through an adopted pipe pair, and summarizes
// rendered output (framebuffer checksum, window tree) so tests can assert
// on visual state without pixel-by-pixel golden files.
#ifndef TESTS_HELPERS_UI_HARNESS_H_
#define TESTS_HELPERS_UI_HARNESS_H_

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/xsim/display.h"
#include "src/xt/widget.h"

namespace ui_harness {

class UiHarness {
 public:
  UiHarness() = default;

  ~UiHarness() {
    if (backend_write_fd_ >= 0) {
      ::close(backend_write_fd_);
    }
    if (backend_read_fd_ >= 0) {
      ::close(backend_read_fd_);
    }
  }

  UiHarness(const UiHarness&) = delete;
  UiHarness& operator=(const UiHarness&) = delete;

  wafe::Wafe& wafe() { return wafe_; }
  xtk::AppContext& app() { return wafe_.app(); }
  xsim::Display& display() { return wafe_.app().display(); }

  std::string Eval(const std::string& script) { return wafe_.Eval(script).value; }

  void Realize() {
    wafe_.Eval("realize");
    wafe_.app().ProcessPending();
  }

  xtk::Widget* Find(const std::string& name) { return wafe_.app().FindWidget(name); }

  // --- Event injection -------------------------------------------------------

  // Full click (press + release) a couple of pixels inside the widget.
  void Click(const std::string& name, unsigned button = 1) {
    Press(name, button);
    Release(name, button);
  }

  void Press(const std::string& name, unsigned button = 1) {
    xsim::Point p = Inside(name);
    display().InjectButtonPress(p.x, p.y, button);
    wafe_.app().ProcessPending();
  }

  void Release(const std::string& name, unsigned button = 1) {
    xsim::Point p = Inside(name);
    display().InjectButtonRelease(p.x, p.y, button);
    wafe_.app().ProcessPending();
  }

  // Releases at the current pointer grab target's expense: used to finish a
  // menu interaction over a specific entry.
  void ReleaseOver(const std::string& name, unsigned button = 1) {
    display().UngrabPointer();
    Release(name, button);
  }

  // Focuses the widget and types `text` as individual key events.
  void Type(const std::string& name, const std::string& text) {
    xtk::Widget* w = Find(name);
    if (w == nullptr) {
      return;
    }
    display().SetInputFocus(w->window());
    display().InjectText(text);
    wafe_.app().ProcessPending();
  }

  void PressKey(xsim::KeySym keysym, unsigned state = 0) {
    display().InjectKeyPress(keysym, state);
    wafe_.app().ProcessPending();
  }

  // --- Backend capture -------------------------------------------------------

  // Wires a pipe pair in place of a real backend: everything callbacks and
  // actions send to the backend's stdin becomes readable here.
  void AttachBackendPipe() {
    int to_wafe[2];
    int from_wafe[2];
    if (::pipe(to_wafe) != 0 || ::pipe(from_wafe) != 0) {
      return;
    }
    backend_write_fd_ = to_wafe[1];
    backend_read_fd_ = from_wafe[0];
    ::fcntl(backend_read_fd_, F_SETFL, O_NONBLOCK);
    wafe_.set_backend_output(true);
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  // Feeds one protocol line into Wafe as if the backend printed it.
  void BackendSays(const std::string& line) {
    std::string out = line + "\n";
    ssize_t ignored = ::write(backend_write_fd_, out.data(), out.size());
    (void)ignored;
    Pump();
  }

  void Pump() {
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  // Complete lines Wafe has sent to the backend so far (drains the pipe).
  std::vector<std::string> BackendReceived() {
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(backend_read_fd_, buffer, sizeof(buffer))) > 0) {
      backend_buffer_.append(buffer, static_cast<std::size_t>(n));
    }
    std::vector<std::string> lines;
    std::size_t start = 0;
    std::size_t nl;
    while ((nl = backend_buffer_.find('\n', start)) != std::string::npos) {
      lines.push_back(backend_buffer_.substr(start, nl - start));
      start = nl + 1;
    }
    backend_buffer_.erase(0, start);
    return lines;
  }

  // --- Golden render ---------------------------------------------------------

  // FNV-1a over the framebuffer: two renders of the same UI state hash
  // equal, any visible pixel difference hashes apart.
  std::uint64_t FramebufferChecksum() {
    std::uint64_t hash = 1469598103934665603ull;
    for (xsim::Pixel pixel : display().framebuffer()) {
      hash = (hash ^ pixel) * 1099511628211ull;
    }
    return hash;
  }

  bool ShowsText(const std::string& name, const std::string& text) {
    xtk::Widget* w = Find(name);
    return w != nullptr && display().WindowShowsText(w->window(), text);
  }

  // One line per widget under `root_name`, depth-indented, with geometry and
  // viewability — a compact golden form of the window tree.
  std::string WindowTreeText(const std::string& root_name = "topLevel") {
    std::ostringstream out;
    if (xtk::Widget* root = Find(root_name)) {
      DumpWidget(root, 0, out);
    }
    return out.str();
  }

 private:
  xsim::Point Inside(const std::string& name) {
    xtk::Widget* w = Find(name);
    if (w == nullptr) {
      return {0, 0};
    }
    xsim::Point p = display().RootPosition(w->window());
    return {static_cast<xsim::Position>(p.x + 2), static_cast<xsim::Position>(p.y + 2)};
  }

  void DumpWidget(xtk::Widget* w, int depth, std::ostringstream& out) {
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    out << w->name() << " " << w->width() << "x" << w->height() << "+" << w->x() << "+"
        << w->y();
    if (w->realized() && display().IsViewable(w->window())) {
      out << " viewable";
    }
    out << "\n";
    for (xtk::Widget* child : w->children()) {
      DumpWidget(child, depth + 1, out);
    }
  }

  wafe::Wafe wafe_;
  int backend_write_fd_ = -1;
  int backend_read_fd_ = -1;
  std::string backend_buffer_;
};

}  // namespace ui_harness

#endif  // TESTS_HELPERS_UI_HARNESS_H_
