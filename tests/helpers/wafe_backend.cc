// A test backend speaking Wafe's frontend protocol over stdio, as an
// application program in any language would (paper §Using Wafe as a
// Frontend). The behavior is selected by argv[1]:
//
//   build   - builds a widget tree, confirms with a round trip, quits
//   echo    - asks the frontend to evaluate an expression and passes the
//             answer through unprefixed (to the frontend's stdout)
//   primes  - the paper's prime-factor demo: reads numbers from stdin,
//             factors them, updates the result label
//   mass    - transfers a payload over the mass channel
//   flood       - sends an over-long protocol line followed by a valid one
//   crash       - exits mid-protocol (frontend robustness)
//   slowreader  - announces readiness, then stops reading stdin for argv[2]
//                 milliseconds before draining it (backpressure tests)
//   drain       - reads stdin forever, sleeping argv[2] microseconds per
//                 line (a steady slow consumer)
//   linger      - announces readiness and sleeps argv[2] milliseconds after
//                 stdin EOF before exiting (reap-path tests)
//   buildlinger - builds a deterministic tree + session vars, confirms, then
//                 lingers argv[2] ms with stdin open (crash-recovery tests)
//   massdribble - writes argv[2] mass-channel bytes in argv[3]-byte chunks
//                 with argv[4] microseconds between chunks
//   badlines    - emits argv[2] malformed protocol lines (each one a Tcl
//                 eval error), then reads stdin until EOF (circuit-breaker
//                 tests)
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

void Send(const std::string& line) {
  std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(1, out.data() + off, out.size() - off);
    if (n <= 0) {
      std::exit(1);
    }
    off += static_cast<std::size_t>(n);
  }
}

bool ReadLine(std::string* line) {
  line->clear();
  char c = 0;
  for (;;) {
    ssize_t n = ::read(0, &c, 1);
    if (n <= 0) {
      return !line->empty();
    }
    if (c == '\n') {
      return true;
    }
    line->push_back(c);
  }
}

int RunBuild() {
  Send("%label greeting topLevel label {backend was here}");
  Send("%realize");
  Send("%echo tree-ready");
  std::string line;
  if (!ReadLine(&line) || line != "tree-ready") {
    return 2;
  }
  Send("confirmed " + line);  // unprefixed: passes through to wafe stdout
  Send("%quit");
  return 0;
}

int RunEcho() {
  Send("%echo [expr 6 * 7]");
  std::string line;
  if (!ReadLine(&line)) {
    return 2;
  }
  Send("answer " + line);
  Send("%quit");
  return 0;
}

int RunPrimes() {
  // Step 2 of the paper's frontend protocol: build the widget tree.
  Send("%form top topLevel");
  Send("%asciiText input top editType edit width 200");
  Send("%action input override {<Key>Return: exec(echo [gV input string])}");
  Send("%label result top label {} width 200 fromVert input");
  Send("%command quit top fromVert result callback quit");
  Send("%label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150");
  Send("%realize");
  // Step 3: the read loop.
  std::string line;
  while (ReadLine(&line)) {
    if (line.empty()) {
      continue;
    }
    bool numeric = true;
    for (char c : line) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
    }
    if (!numeric) {
      Send("%sV info label {(invalid input)}");
      continue;
    }
    Send("%sV info label thinking...");
    long n = std::strtol(line.c_str(), nullptr, 10);
    std::string factors;
    for (long d = 2; d <= n; ++d) {
      while (n % d == 0) {
        if (!factors.empty()) {
          factors += "*";
        }
        factors += std::to_string(d);
        n /= d;
      }
    }
    if (factors.empty()) {
      factors = line;
    }
    Send("%sV result label {" + factors + "}");
    Send("%sV info label {0 seconds}");
  }
  return 0;
}

int RunMass(const char* payload_size) {
  Send("%echo listening on [getChannel]");
  std::string line;
  if (!ReadLine(&line)) {
    return 2;
  }
  // "listening on N"
  const char* digits = std::strrchr(line.c_str(), ' ');
  if (digits == nullptr) {
    return 2;
  }
  int fd = std::atoi(digits + 1);
  std::size_t size = payload_size != nullptr
                         ? static_cast<std::size_t>(std::strtoul(payload_size, nullptr, 10))
                         : 100000;
  Send("%setCommunicationVariable C " + std::to_string(size) +
       " {echo got $C-bytes-done; quit}");
  std::string payload(size, 'x');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n <= 0) {
      return 3;
    }
    off += static_cast<std::size_t>(n);
  }
  // Wait for the completion echo, then stop.
  ReadLine(&line);
  return 0;
}

int RunFlood() {
  std::string long_line = "%echo ";
  long_line.append(100 * 1024, 'z');  // exceeds the 64 KB default
  Send(long_line);
  Send("%label ok topLevel");
  Send("%echo survived");
  std::string line;
  if (!ReadLine(&line) || line != "survived") {
    return 2;
  }
  Send("%quit");
  return 0;
}

int RunCrash() {
  Send("%label orphan topLevel");
  return 42;  // die without quitting
}

int RunSlowReader(const char* stall_ms_arg) {
  long stall_ms = stall_ms_arg != nullptr ? std::strtol(stall_ms_arg, nullptr, 10) : 1000;
  Send("%echo slowreader-ready");
  // Simulate a wedged backend: stop consuming stdin. The frontend's writes
  // must queue instead of blocking Xt event dispatch.
  ::usleep(static_cast<useconds_t>(stall_ms) * 1000);
  // Wake up and drain everything until EOF, confirming nothing was lost.
  std::size_t lines = 0;
  std::string line;
  while (ReadLine(&line)) {
    if (line == "done") {
      break;
    }
    ++lines;
  }
  Send("%echo drained " + std::to_string(lines));
  std::string ack;
  ReadLine(&ack);
  return 0;
}

int RunDrain(const char* delay_us_arg) {
  long delay_us = delay_us_arg != nullptr ? std::strtol(delay_us_arg, nullptr, 10) : 1000;
  Send("%echo drain-ready");
  std::string line;
  while (ReadLine(&line)) {
    if (delay_us > 0) {
      ::usleep(static_cast<useconds_t>(delay_us));
    }
  }
  return 0;
}

// Builds a deterministic widget tree and session state, confirms with a
// round trip, then lingers with stdin open: the frontend can be SIGKILLed
// at a known point mid-session (record/replay crash-recovery tests).
int RunBuildLinger(const char* linger_ms_arg) {
  long linger_ms = linger_ms_arg != nullptr ? std::strtol(linger_ms_arg, nullptr, 10)
                                            : 30000;
  Send("%form top topLevel");
  Send("%label greeting top label {recorded session}");
  Send("%command go top label Go fromVert greeting callback {set clicked 1}");
  Send("%realize");
  Send("%set recorded(phase) built");
  Send("%set recorded(lines) 6");
  Send("%echo built");
  std::string line;
  if (!ReadLine(&line) || line != "built") {
    return 2;
  }
  Send("built-confirmed");  // unprefixed: tells the test harness we're done
  // Drop the inherited stderr so a captured-output harness (ctest) sees EOF
  // as soon as the frontend dies, instead of waiting out the linger.
  ::close(2);
  ::usleep(static_cast<useconds_t>(linger_ms) * 1000);
  return 0;
}

int RunLinger(const char* linger_ms_arg) {
  long linger_ms = linger_ms_arg != nullptr ? std::strtol(linger_ms_arg, nullptr, 10) : 100;
  Send("%echo linger-ready");
  std::string line;
  while (ReadLine(&line)) {
  }
  // Keep running past stdin EOF: CloseBackend must still reap us cleanly.
  ::usleep(static_cast<useconds_t>(linger_ms) * 1000);
  return 7;  // a distinctive exit code the frontend should record
}

int RunMassDribble(const char* size_arg, const char* chunk_arg, const char* delay_arg) {
  std::size_t size = size_arg != nullptr ? std::strtoul(size_arg, nullptr, 10) : 65536;
  std::size_t chunk = chunk_arg != nullptr ? std::strtoul(chunk_arg, nullptr, 10) : 4096;
  long delay_us = delay_arg != nullptr ? std::strtol(delay_arg, nullptr, 10) : 100;
  Send("%echo listening on [getChannel]");
  std::string line;
  if (!ReadLine(&line)) {
    return 2;
  }
  const char* digits = std::strrchr(line.c_str(), ' ');
  if (digits == nullptr) {
    return 2;
  }
  int fd = std::atoi(digits + 1);
  Send("%setCommunicationVariable C " + std::to_string(size) +
       " {echo got [string length $C] bytes; quit}");
  std::string payload(size, 'm');
  std::size_t off = 0;
  while (off < payload.size()) {
    std::size_t want = std::min(chunk, payload.size() - off);
    ssize_t n = ::write(fd, payload.data() + off, want);
    if (n <= 0) {
      return 3;
    }
    off += static_cast<std::size_t>(n);
    if (delay_us > 0) {
      ::usleep(static_cast<useconds_t>(delay_us));
    }
  }
  ReadLine(&line);
  return 0;
}

int RunBadLines(const char* count_arg) {
  long count = count_arg != nullptr ? std::strtol(count_arg, nullptr, 10) : 100;
  for (long i = 0; i < count; ++i) {
    Send("%noSuchCommand badline " + std::to_string(i));
  }
  // Stay alive reading the error reports until the frontend drops us.
  std::string line;
  while (ReadLine(&line)) {
  }
  return 0;
}

int RunInitCom() {
  // The paper's Prolog pattern: the backend waits for the frontend's
  // initial command (the InitCom resource) before doing anything.
  std::string line;
  if (!ReadLine(&line)) {
    return 2;
  }
  Send("%label started topLevel label {" + line + "}");
  Send("%realize");
  Send("%quit");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "build";
  if (mode == "build") {
    return RunBuild();
  }
  if (mode == "echo") {
    return RunEcho();
  }
  if (mode == "primes") {
    return RunPrimes();
  }
  if (mode == "mass") {
    return RunMass(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "flood") {
    return RunFlood();
  }
  if (mode == "crash") {
    return RunCrash();
  }
  if (mode == "badlines") {
    return RunBadLines(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "initcom") {
    return RunInitCom();
  }
  if (mode == "slowreader") {
    return RunSlowReader(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "drain") {
    return RunDrain(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "linger") {
    return RunLinger(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "buildlinger") {
    return RunBuildLinger(argc > 2 ? argv[2] : nullptr);
  }
  if (mode == "massdribble") {
    return RunMassDribble(argc > 2 ? argv[2] : nullptr, argc > 3 ? argv[3] : nullptr,
                          argc > 4 ? argv[4] : nullptr);
  }
  std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
  return 64;
}
