// Translation table parsing and event matching.
#include <gtest/gtest.h>

#include "src/xt/translations.h"
#include "src/xt/value.h"

namespace xtk {
namespace {

using xsim::Event;
using xsim::EventType;

TranslationsPtr Parse(const std::string& text) {
  std::string error;
  TranslationsPtr table = ParseTranslations(text, &error);
  EXPECT_NE(table, nullptr) << error;
  return table;
}

TEST(Translations, ParsesSimpleProduction) {
  TranslationsPtr t = Parse("<EnterWindow>: PopupMenu()");
  ASSERT_EQ(t->productions.size(), 1u);
  EXPECT_EQ(t->productions[0].matcher.type, EventType::kEnterNotify);
  ASSERT_EQ(t->productions[0].actions.size(), 1u);
  EXPECT_EQ(t->productions[0].actions[0].name, "PopupMenu");
  EXPECT_TRUE(t->productions[0].actions[0].params.empty());
}

TEST(Translations, ParsesKeyDetail) {
  TranslationsPtr t = Parse("<Key>Return: newline()");
  EXPECT_EQ(t->productions[0].matcher.keysym, xsim::kKeyReturn);
}

TEST(Translations, ParsesPaperExecExample) {
  // The paper: <KeyPress>: exec(echo %k %a %s)
  TranslationsPtr t = Parse("<KeyPress>: exec(echo %k %a %s)");
  ASSERT_EQ(t->productions.size(), 1u);
  const ActionCall& call = t->productions[0].actions[0];
  EXPECT_EQ(call.name, "exec");
  ASSERT_EQ(call.params.size(), 1u);
  EXPECT_EQ(call.params[0], "echo %k %a %s");
}

TEST(Translations, ParamsWithNestedBracketsSurvive) {
  TranslationsPtr t = Parse("<Key>Return: exec(echo [gV input string])");
  EXPECT_EQ(t->productions[0].actions[0].params[0], "echo [gV input string]");
}

TEST(Translations, MultipleActionsPerProduction) {
  TranslationsPtr t = Parse("<Btn1Up>: notify() unset()");
  ASSERT_EQ(t->productions[0].actions.size(), 2u);
  EXPECT_EQ(t->productions[0].actions[0].name, "notify");
  EXPECT_EQ(t->productions[0].actions[1].name, "unset");
}

TEST(Translations, CommaSeparatedParams) {
  TranslationsPtr t = Parse("<Btn1Down>: doit(a, b, c)");
  ASSERT_EQ(t->productions[0].actions[0].params.size(), 3u);
  EXPECT_EQ(t->productions[0].actions[0].params[1], "b");
}

TEST(Translations, QuotedParamKeepsCommas) {
  TranslationsPtr t = Parse("<Btn1Down>: doit(\"a, b\", c)");
  ASSERT_EQ(t->productions[0].actions[0].params.size(), 2u);
  EXPECT_EQ(t->productions[0].actions[0].params[0], "a, b");
}

TEST(Translations, MultipleProductions) {
  TranslationsPtr t = Parse(
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: reset()\n"
      "<Btn1Down>: set()");
  EXPECT_EQ(t->productions.size(), 3u);
}

TEST(Translations, ModifierPrefixes) {
  TranslationsPtr t = Parse("Shift Ctrl<Key>a: doit()");
  const EventMatcher& m = t->productions[0].matcher;
  EXPECT_EQ(m.required_modifiers, xsim::kShiftMask | xsim::kControlMask);
}

TEST(Translations, NegatedModifier) {
  TranslationsPtr t = Parse("~Shift<Key>a: doit()");
  const EventMatcher& m = t->productions[0].matcher;
  EXPECT_EQ(m.forbidden_modifiers, xsim::kShiftMask);
}

TEST(Translations, ButtonShorthand) {
  TranslationsPtr t = Parse("<Btn3Down>: menu()");
  EXPECT_EQ(t->productions[0].matcher.type, EventType::kButtonPress);
  EXPECT_EQ(t->productions[0].matcher.button, 3u);
}

TEST(Translations, ParseErrors) {
  std::string error;
  EXPECT_EQ(ParseTranslations("<NoSuchEvent>: x()", &error), nullptr);
  EXPECT_NE(error.find("unknown event type"), std::string::npos);
  EXPECT_EQ(ParseTranslations("<Key>NoSuchKey: x()", &error), nullptr);
  EXPECT_EQ(ParseTranslations("<Key>Return x()", &error), nullptr);  // missing colon
  EXPECT_EQ(ParseTranslations("<Btn1Down>: broken(", &error), nullptr);
}

// --- Matching ------------------------------------------------------------------

Event MakeKey(xsim::KeySym keysym, unsigned state = 0) {
  Event e;
  e.type = EventType::kKeyPress;
  e.keysym = keysym;
  e.state = state;
  return e;
}

Event MakeButton(unsigned button, unsigned state = 0) {
  Event e;
  e.type = EventType::kButtonPress;
  e.button = button;
  e.state = state;
  return e;
}

TEST(TranslationMatch, FirstMatchWins) {
  TranslationsPtr t = Parse(
      "<Key>Return: first()\n"
      "<KeyPress>: second()");
  const Production* p = t->Match(MakeKey(xsim::kKeyReturn));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->actions[0].name, "first");
  p = t->Match(MakeKey(xsim::AsciiToKeysym('x')));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->actions[0].name, "second");
}

TEST(TranslationMatch, ModifiersRequired) {
  TranslationsPtr t = Parse("Shift<Key>a: shifted()");
  EXPECT_EQ(t->Match(MakeKey(xsim::AsciiToKeysym('a'))), nullptr);
  EXPECT_NE(t->Match(MakeKey(xsim::AsciiToKeysym('a'), xsim::kShiftMask)), nullptr);
}

TEST(TranslationMatch, ForbiddenModifiers) {
  TranslationsPtr t = Parse("~Ctrl<Key>a: plain()");
  EXPECT_NE(t->Match(MakeKey(xsim::AsciiToKeysym('a'))), nullptr);
  EXPECT_EQ(t->Match(MakeKey(xsim::AsciiToKeysym('a'), xsim::kControlMask)), nullptr);
}

TEST(TranslationMatch, ButtonDetail) {
  TranslationsPtr t = Parse("<Btn2Down>: middle()");
  EXPECT_EQ(t->Match(MakeButton(1)), nullptr);
  EXPECT_NE(t->Match(MakeButton(2)), nullptr);
}

TEST(TranslationMatch, WrongTypeNoMatch) {
  TranslationsPtr t = Parse("<Btn1Down>: x()");
  EXPECT_EQ(t->Match(MakeKey(xsim::kKeyReturn)), nullptr);
}

// --- Merge modes -----------------------------------------------------------------

TEST(TranslationMerge, OverridePutsIncomingFirst) {
  TranslationsPtr base = Parse("<Btn1Down>: old()");
  TranslationsPtr incoming = Parse("<Btn1Down>: new()");
  TranslationsPtr merged = MergeTranslations(base, incoming, MergeMode::kOverride);
  const Production* p = merged->Match(MakeButton(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->actions[0].name, "new");
  EXPECT_EQ(merged->productions.size(), 2u);
}

TEST(TranslationMerge, AugmentKeepsBaseFirst) {
  TranslationsPtr base = Parse("<Btn1Down>: old()");
  TranslationsPtr incoming = Parse("<Btn1Down>: new()");
  TranslationsPtr merged = MergeTranslations(base, incoming, MergeMode::kAugment);
  EXPECT_EQ(merged->Match(MakeButton(1))->actions[0].name, "old");
}

TEST(TranslationMerge, ReplaceDropsBase) {
  TranslationsPtr base = Parse(
      "<Btn1Down>: old()\n"
      "<Key>Return: keep()");
  TranslationsPtr incoming = Parse("<Btn1Down>: new()");
  TranslationsPtr merged = MergeTranslations(base, incoming, MergeMode::kReplace);
  EXPECT_EQ(merged->productions.size(), 1u);
  EXPECT_EQ(merged->Match(MakeKey(xsim::kKeyReturn)), nullptr);
}

}  // namespace
}  // namespace xtk
