// The Xt selection mechanism and accelerators — both part of the Intrinsics
// functionality the paper says Wafe's commands expose.
#include <gtest/gtest.h>

#include "src/core/wafe.h"

namespace {

class SelectionTest : public ::testing::Test {
 protected:
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_.Eval(script);
    EXPECT_TRUE(r.ok()) << script << ": " << r.value;
    return r.value;
  }
  wafe::Wafe wafe_;
};

TEST_F(SelectionTest, OwnAndGetValue) {
  Eval("label l topLevel");
  Eval("realize");
  Eval("ownSelection l PRIMARY {selected text}");
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "selected text");
  EXPECT_EQ(Eval("selectionOwner PRIMARY"), "l");
}

TEST_F(SelectionTest, UnownedSelectionIsEmpty) {
  EXPECT_EQ(Eval("getSelectionValue CLIPBOARD"), "");
  EXPECT_EQ(Eval("selectionOwner CLIPBOARD"), "");
}

TEST_F(SelectionTest, NewOwnerDisplacesOld) {
  Eval("label a topLevel");
  Eval("label b topLevel");
  Eval("realize");
  Eval("ownSelection a PRIMARY {from a}");
  Eval("ownSelection b PRIMARY {from b}");
  wafe_.app().ProcessPending();  // delivers SelectionClear to a
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "from b");
  EXPECT_EQ(Eval("selectionOwner PRIMARY"), "b");
}

TEST_F(SelectionTest, DisownClears) {
  Eval("label l topLevel");
  Eval("realize");
  Eval("ownSelection l PRIMARY {value}");
  Eval("disownSelection PRIMARY");
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "");
}

TEST_F(SelectionTest, DestroyOwnerClearsSelection) {
  Eval("label l topLevel");
  Eval("realize");
  Eval("ownSelection l PRIMARY {value}");
  Eval("destroyWidget l");
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "");
  EXPECT_EQ(Eval("selectionOwner PRIMARY"), "");
}

TEST_F(SelectionTest, IndependentSelections) {
  Eval("label l topLevel");
  Eval("realize");
  Eval("ownSelection l PRIMARY {primary value}");
  Eval("ownSelection l SECONDARY {secondary value}");
  EXPECT_EQ(Eval("getSelectionValue PRIMARY"), "primary value");
  EXPECT_EQ(Eval("getSelectionValue SECONDARY"), "secondary value");
}

// --- Accelerators ------------------------------------------------------------------------

TEST_F(SelectionTest, AcceleratorsRunOnSourceWidget) {
  // The classic pattern: a button's accelerator (a key binding) installed on
  // the text widget, so pressing the key in the text widget "presses" the
  // button.
  Eval("form f topLevel");
  Eval("asciiText input f editType edit width 120");
  Eval("command go f fromVert input callback {set pressed %w}");
  Eval("sV go accelerators {Ctrl<Key>g: notify()}");
  Eval("installAccelerators input go");
  Eval("realize");
  xtk::Widget* input = wafe_.app().FindWidget("input");
  wafe_.app().display().SetInputFocus(input->window());
  wafe_.app().display().InjectKeyPress(xsim::AsciiToKeysym('g'), xsim::kControlMask);
  wafe_.app().ProcessPending();
  // The notify action ran on `go`, not on the text widget.
  EXPECT_EQ(Eval("set pressed"), "go");
}

TEST_F(SelectionTest, AcceleratorKeepsDestinationTranslations) {
  Eval("form f topLevel");
  Eval("asciiText input f editType edit width 120");
  Eval("command go f fromVert input callback {set pressed 1}");
  Eval("sV go accelerators {Ctrl<Key>g: notify()}");
  Eval("installAccelerators input go");
  Eval("realize");
  xtk::Widget* input = wafe_.app().FindWidget("input");
  wafe_.app().display().SetInputFocus(input->window());
  wafe_.app().display().InjectText("hi");
  wafe_.app().ProcessPending();
  // Ordinary typing still reaches the text widget.
  EXPECT_EQ(input->GetString("string"), "hi");
}

TEST_F(SelectionTest, InstallWithoutAcceleratorsFails) {
  Eval("label plain topLevel");
  Eval("label dest topLevel");
  wtcl::Result r = wafe_.Eval("installAccelerators dest plain");
  EXPECT_EQ(r.code, wtcl::Status::kError);
}

TEST_F(SelectionTest, InsensitiveAcceleratorSourceDoesNotFire) {
  Eval("form f topLevel");
  Eval("asciiText input f editType edit");
  Eval("command go f callback {set pressed 1}");
  Eval("sV go accelerators {Ctrl<Key>g: notify()}");
  Eval("installAccelerators input go");
  Eval("setSensitive go false");
  Eval("realize");
  xtk::Widget* input = wafe_.app().FindWidget("input");
  wafe_.app().display().SetInputFocus(input->window());
  wafe_.app().display().InjectKeyPress(xsim::AsciiToKeysym('g'), xsim::kControlMask);
  wafe_.app().ProcessPending();
  EXPECT_FALSE(wafe_.interp().VarExists("pressed"));
}

}  // namespace
