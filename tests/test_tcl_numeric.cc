// Numeric edge-case corpus for the centralized number parser and the typed
// (dual-rep) value layer: overflow is a hard error rather than UB or a
// silent clamp, invalid octals like "08" never leak through as doubles,
// `end-N` index arithmetic is overflow-checked, and shimmering between
// string / int / double / list reps is observationally invisible — including
// under the compile caches, which must never pin stale numeric state.
#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <string>
#include <vector>

#include "src/tcl/interp.h"
#include "src/tcl/value.h"

namespace wtcl {
namespace {

std::string Eval(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_EQ(r.code, Status::kOk) << script << " -> " << r.value;
  return r.value;
}

std::string EvalError(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  EXPECT_EQ(r.code, Status::kError) << script << " -> " << r.value;
  return r.value;
}

// --- incr: overflow is detected, not wrapped -------------------------------

TEST(TclNumeric, IncrOverflowAtLongMaxIsError) {
  Interp interp;
  Eval(interp, "set x " + std::to_string(LONG_MAX));
  std::string error = EvalError(interp, "incr x");
  EXPECT_NE(error.find("integer overflow in incr"), std::string::npos) << error;
  // The variable is untouched by the failed incr.
  EXPECT_EQ(Eval(interp, "set x"), std::to_string(LONG_MAX));
}

TEST(TclNumeric, IncrUnderflowAtLongMinIsError) {
  Interp interp;
  Eval(interp, "set x " + std::to_string(LONG_MIN));
  std::string error = EvalError(interp, "incr x -1");
  EXPECT_NE(error.find("integer overflow in incr"), std::string::npos) << error;
}

TEST(TclNumeric, IncrRejectsOverflowingLiteral) {
  Interp interp;
  Eval(interp, "set x 1");
  // ERANGE used to be ignored, silently adding a clamped LONG_MAX.
  std::string error = EvalError(interp, "incr x 99999999999999999999");
  EXPECT_NE(error.find("integer value too large to represent"),
            std::string::npos)
      << error;
  std::string error2 = EvalError(interp, "incr x nonsense");
  EXPECT_NE(error2.find("expected integer but got"), std::string::npos)
      << error2;
}

TEST(TclNumeric, IncrAcceptsHexOctalAndWhitespace) {
  Interp interp;
  Eval(interp, "set x 0");
  EXPECT_EQ(Eval(interp, "incr x 0x10"), "16");
  EXPECT_EQ(Eval(interp, "incr x 010"), "24");
  EXPECT_EQ(Eval(interp, "incr x \" 6 \""), "30");
}

// --- expr: "08"/"09" are malformed integers, not the doubles 8.0/9.0 -------

TEST(TclNumeric, ExprBadOctalLiteralIsHardError) {
  Interp interp;
  for (const char* script :
       {"expr 08", "expr 09", "expr {08 + 1}", "expr {1 + 089}"}) {
    std::string error = EvalError(interp, script);
    EXPECT_NE(error.find("expected integer but got"), std::string::npos)
        << script << " -> " << error;
  }
}

TEST(TclNumeric, ExprBadOctalThroughVariableIsHardError) {
  Interp interp;
  Eval(interp, "set v 09");
  std::string error = EvalError(interp, "expr {$v + 1}");
  EXPECT_NE(error.find("can't use invalid octal number as operand of \"+\""),
            std::string::npos)
      << error;
  // Comparison operators fall back to string comparison instead (Tcl
  // semantics: only arithmetic rejects the malformed number).
  EXPECT_EQ(Eval(interp, "expr {$v < 1}"), "1");
  EXPECT_EQ(Eval(interp, "expr {$v == 9}"), "0");
}

TEST(TclNumeric, ExprOverflowingIntegerLiteralIsHardError) {
  Interp interp;
  std::string error = EvalError(interp, "expr {99999999999999999999 + 1}");
  EXPECT_NE(error.find("integer value too large to represent"),
            std::string::npos)
      << error;
  // Written as a double it is fine — doubles absorb the magnitude.
  EXPECT_EQ(Eval(interp, "expr {1e19 > 0}"), "1");
}

TEST(TclNumeric, ExprValidOctalAndHexStillWork) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "expr {010 + 0}"), "8");
  EXPECT_EQ(Eval(interp, "expr {0x1f + 1}"), "32");
  EXPECT_EQ(Eval(interp, "expr {07 + 01}"), "8");
}

TEST(TclNumeric, ExprDivisionOverflowDoesNotTrap) {
  Interp interp;
  // LONG_MIN / -1 and LONG_MIN % -1 are the classic SIGFPE traps. The
  // literal "-9223372036854775808" is unary minus on an overflowing
  // positive constant (a hard error, as in classic Tcl), so feed LONG_MIN
  // through a variable, where the sign is part of the integer parse.
  Eval(interp, "set m " + std::to_string(LONG_MIN));
  EXPECT_EQ(Eval(interp, "expr {$m % -1}"), "0");
  Result r = interp.Eval("expr {$m / -1}");
  EXPECT_EQ(r.code, Status::kOk) << r.value;
}

// --- lsort -integer / -real: invalid input errors instead of sorting as 0 --

TEST(TclNumeric, LsortIntegerErrorsOnNonNumericElement) {
  Interp interp;
  std::string error = EvalError(interp, "lsort -integer {3 apple 1}");
  EXPECT_NE(error.find("expected integer but got \"apple\""), std::string::npos)
      << error;
}

TEST(TclNumeric, LsortIntegerSortsNumerically) {
  Interp interp;
  EXPECT_EQ(Eval(interp, "lsort -integer {10 9 100}"), "9 10 100");
  EXPECT_EQ(Eval(interp, "lsort -integer {0x10 9 010}"), "010 9 0x10");
}

TEST(TclNumeric, LsortRealErrorsOnNonNumericElement) {
  Interp interp;
  std::string error = EvalError(interp, "lsort -real {1.5 pear}");
  EXPECT_NE(error.find("expected floating-point number but got \"pear\""),
            std::string::npos)
      << error;
  EXPECT_EQ(Eval(interp, "lsort -real {2.5 -1 10.25 3}"), "-1 2.5 3 10.25");
}

// --- list indices: end-N semantics and overflow ---------------------------

TEST(TclNumeric, ListIndexEndForms) {
  Interp interp;
  Eval(interp, "set l {a b c d}");
  EXPECT_EQ(Eval(interp, "lindex $l end"), "d");
  EXPECT_EQ(Eval(interp, "lindex $l end-2"), "b");
  EXPECT_EQ(Eval(interp, "lrange $l end-2 end"), "b c d");
  EXPECT_EQ(Eval(interp, "lindex $l 0x2"), "c");
}

TEST(TclNumeric, ListIndexEndMinusOverflowIsError) {
  Interp interp;
  Eval(interp, "set l {a b c}");
  // end - LONG_MIN overflows the signed subtraction; must error, not wrap
  // around into a bogus in-range index.
  std::string error =
      EvalError(interp, "lindex $l end-" + std::to_string(LONG_MIN));
  EXPECT_NE(error.find("bad index"), std::string::npos) << error;
  // A huge-but-valid offset is simply out of range: empty result.
  EXPECT_EQ(Eval(interp, "lindex $l end-1000000"), "");
}

// --- the central classifier, exercised directly ---------------------------

TEST(TclNumeric, ClassifyNumberKinds) {
  long i = 0;
  double d = 0;
  EXPECT_EQ(ClassifyNumber("42", &i, &d), NumberKind::kInt);
  EXPECT_EQ(i, 42);
  EXPECT_EQ(ClassifyNumber(" -0x2A\t", &i, &d), NumberKind::kInt);
  EXPECT_EQ(i, -42);
  EXPECT_EQ(ClassifyNumber("017", &i, &d), NumberKind::kInt);
  EXPECT_EQ(i, 15);
  EXPECT_EQ(ClassifyNumber("3.5", &i, &d), NumberKind::kDouble);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(ClassifyNumber("1e3", &i, &d), NumberKind::kDouble);
  EXPECT_EQ(ClassifyNumber("08", &i, &d), NumberKind::kBadInteger);
  EXPECT_EQ(ClassifyNumber("-09", &i, &d), NumberKind::kBadInteger);
  EXPECT_EQ(ClassifyNumber("99999999999999999999", &i, &d),
            NumberKind::kOverflow);
  EXPECT_EQ(ClassifyNumber("", &i, &d), NumberKind::kNotNumeric);
  EXPECT_EQ(ClassifyNumber("12ab", &i, &d), NumberKind::kNotNumeric);
  EXPECT_EQ(ClassifyNumber("1.5.2", &i, &d), NumberKind::kNotNumeric);
}

TEST(TclNumeric, ParseIndexForms) {
  long out = 0;
  EXPECT_TRUE(ParseIndex("2", 5, &out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ParseIndex("end", 5, &out));
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(ParseIndex("end-3", 5, &out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(ParseIndex("end-" + std::to_string(LONG_MIN), 5, &out));
  EXPECT_FALSE(ParseIndex("end-x", 5, &out));
  EXPECT_FALSE(ParseIndex("2.5", 5, &out));
}

// --- shimmering: rep transitions preserve the observable value -------------

TEST(TclNumeric, ShimmerRoundTrips) {
  Value v = Value::FromInt(42);
  EXPECT_EQ(v.String(), "42");
  long i = 0;
  EXPECT_TRUE(v.GetInt(&i));
  EXPECT_EQ(i, 42);

  // string -> list -> string: quoting survives.
  Value list("a {b c} d");
  const std::vector<Value>* elements = list.GetList();
  ASSERT_NE(elements, nullptr);
  ASSERT_EQ(elements->size(), 3u);
  EXPECT_EQ((*elements)[1].String(), "b c");
  EXPECT_EQ(list.String(), "a {b c} d");

  // list-built value materializes its string rep lazily and re-quotes.
  Value built = Value::FromList({Value("x"), Value("y z")});
  EXPECT_EQ(built.String(), "x {y z}");

  // double rep formats through FormatDouble (integer-valued -> ".0").
  Value d = Value::FromDouble(2.0);
  EXPECT_EQ(d.String(), "2.0");

  // Mutation through a shared rep copies instead of clobbering the sharer.
  Value a("5");
  Value b = a;
  b.SetInt(7);
  EXPECT_EQ(a.String(), "5");
  EXPECT_EQ(b.String(), "7");

  // Malformed list: classification caches the failure, string is intact.
  Value bad("{unclosed");
  EXPECT_EQ(bad.GetList(), nullptr);
  EXPECT_EQ(bad.GetList(), nullptr);
  EXPECT_EQ(bad.String(), "{unclosed");
}

TEST(TclNumeric, ShimmerThroughVariableCaches) {
  Interp interp;
  // Build via lappend (string path), read via lindex (list rep), then
  // mutate and re-read: the cached rep must not survive the write.
  Eval(interp, "set l {1 2 3}");
  EXPECT_EQ(Eval(interp, "lindex $l 1"), "2");
  Eval(interp, "lappend l 4");
  EXPECT_EQ(Eval(interp, "llength $l"), "4");
  EXPECT_EQ(Eval(interp, "lindex $l end"), "4");
  Eval(interp, "set l {9 8}");
  EXPECT_EQ(Eval(interp, "llength $l"), "2");

  // An integer shimmered through incr still works as a list element source.
  Eval(interp, "set n 5");
  EXPECT_EQ(Eval(interp, "incr n"), "6");
  EXPECT_EQ(Eval(interp, "llength $n"), "1");
  EXPECT_EQ(Eval(interp, "expr {$n + 1}"), "7");
}

// --- determinism: fresh interp vs warm compile cache vs flushed cache ------

struct Outcome {
  Status code;
  std::string value;
  bool operator==(const Outcome& other) const {
    return code == other.code && value == other.value;
  }
};

Outcome RunScript(Interp& interp, const std::string& script) {
  Result r = interp.Eval(script);
  return {r.code, r.value};
}

// Deterministic xorshift so the corpus is reproducible across runs.
std::uint64_t NextRand(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

std::string RandomNumericToken(std::uint64_t* state) {
  static const char* kTokens[] = {
      "0",   "1",    "-1",  "42",   "010", "0x1f", "08",    "09",
      "3.5", "-2.5", "1e3", "1e19", "end", " 7 ",  "apple", "9223372036854775807",
      "99999999999999999999"};
  return kTokens[NextRand(state) % (sizeof(kTokens) / sizeof(kTokens[0]))];
}

// Every script is evaluated in three regimes — fresh interpreter, warm
// compile cache (second eval in the same interp), and after an explicit
// FlushCompileCaches — and all three must agree byte-for-byte. This pins
// the PR 5 invariant that shimmer state lives in values, never in cached
// IR: a cached script may not remember a previous run's numeric reps.
TEST(TclNumeric, FuzzCachedVsFlushedVsFreshAgree) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const char* kTemplates[] = {
      "set x %1; incr x %2",
      "expr {%1 + %2}",
      "expr {%1 > %2}",
      "lindex {10 20 30 40} %1",
      "lsort -integer {%1 %2 5}",
      "set l {%1 %2}; llength $l",
      "foreach v {%1 %2} {set last $v}; set last",
      "set a %1; expr {$a * 2}",
  };
  for (int round = 0; round < 200; ++round) {
    std::string t1 = RandomNumericToken(&state);
    std::string t2 = RandomNumericToken(&state);
    std::string script = kTemplates[round % (sizeof(kTemplates) /
                                             sizeof(kTemplates[0]))];
    for (std::string::size_type pos; (pos = script.find("%1")) !=
                                     std::string::npos;) {
      script.replace(pos, 2, t1);
    }
    for (std::string::size_type pos; (pos = script.find("%2")) !=
                                     std::string::npos;) {
      script.replace(pos, 2, t2);
    }

    Interp fresh;
    Outcome first = RunScript(fresh, script);

    Interp warm;
    RunScript(warm, script);
    Outcome cached = RunScript(warm, script);

    warm.FlushCompileCaches();
    Outcome flushed = RunScript(warm, script);

    EXPECT_TRUE(first == cached)
        << script << "\n fresh: " << first.value
        << "\n cached: " << cached.value;
    EXPECT_TRUE(cached == flushed)
        << script << "\n cached: " << cached.value
        << "\n flushed: " << flushed.value;
  }
}

}  // namespace
}  // namespace wtcl
