// Black-box tests of the installed `wafe` / `mofe` binaries: interactive
// mode over a pipe, file mode with #! scripts, the --reference dump, the
// x<name> frontend invocation convention, and command-line splitting.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#ifndef WAFE_BINARY
#error "WAFE_BINARY must point at the wafe executable"
#endif
#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace {

// Runs `command` with `input` on stdin; captures stdout.
struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunWithInput(const std::string& command, const std::string& input) {
  RunResult result;
  std::string tmp_in = "/tmp/wafe_bin_in." + std::to_string(::getpid());
  std::string tmp_out = "/tmp/wafe_bin_out." + std::to_string(::getpid());
  {
    std::ofstream f(tmp_in);
    f << input;
  }
  std::string full = command + " < " + tmp_in + " > " + tmp_out + " 2>/dev/null";
  int status = std::system(full.c_str());
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream f(tmp_out);
  std::string line;
  while (std::getline(f, line)) {
    result.output += line + "\n";
  }
  ::unlink(tmp_in.c_str());
  ::unlink(tmp_out.c_str());
  return result;
}

TEST(WafeBinary, InteractivePaperSession) {
  RunResult r = RunWithInput(WAFE_BINARY,
                             "label l topLevel\n"
                             "echo [getResourceList l retVal]\n"
                             "quit\n");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("42\n"), std::string::npos);
}

TEST(WafeBinary, InteractiveMultiLineBraces) {
  RunResult r = RunWithInput(WAFE_BINARY,
                             "proc greet {} {\n"
                             "  return hello-from-proc\n"
                             "}\n"
                             "greet\n"
                             "quit\n");
  EXPECT_NE(r.output.find("hello-from-proc"), std::string::npos);
}

TEST(WafeBinary, InteractiveErrorsReported) {
  RunResult r = RunWithInput(WAFE_BINARY,
                             "nosuchcommand\n"
                             "echo still alive\n"
                             "quit\n");
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("still alive"), std::string::npos);
}

TEST(WafeBinary, FileModeWithShebang) {
  std::string script = "/tmp/wafe_bin_script.wafe";
  {
    std::ofstream f(script);
    f << "#!/usr/bin/X11/wafe --f\n"
         "command hello topLevel label \"Wafe new World\" callback quit\n"
         "realize\n"
         "echo realized ok\n"
         "quit 7\n";
  }
  RunResult r = RunWithInput(std::string(WAFE_BINARY) + " --f " + script, "");
  EXPECT_EQ(r.exit_code, 7);
  EXPECT_NE(r.output.find("realized ok"), std::string::npos);
  ::unlink(script.c_str());
}

TEST(WafeBinary, FileModeMissingFile) {
  RunResult r = RunWithInput(std::string(WAFE_BINARY) + " --f /no/such/file.wafe", "");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(WafeBinary, ReferenceDump) {
  RunResult r = RunWithInput(std::string(WAFE_BINARY) + " --reference", "");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Wafe Short Reference"), std::string::npos);
  EXPECT_NE(r.output.find("destroyWidget"), std::string::npos);
  EXPECT_NE(r.output.find("asciiText"), std::string::npos);
}

TEST(WafeBinary, MofeHasMotifCommands) {
  std::string mofe = WAFE_BINARY;
  mofe.replace(mofe.rfind("wafe"), 4, "mofe");
  RunResult r = RunWithInput(mofe + " --reference", "");
  EXPECT_NE(r.output.find("mPushButton"), std::string::npos);
  EXPECT_NE(r.output.find("mCascadeButtonHighlight"), std::string::npos);
  EXPECT_EQ(r.output.find("asciiText"), std::string::npos);
}

TEST(WafeBinary, ExplicitBackendFrontendMode) {
  // `wafe <backend> <args>` runs frontend mode; the `build` helper creates
  // a tree, passes one line through, and quits.
  RunResult r =
      RunWithInput(std::string(WAFE_BINARY) + " " + WAFE_TEST_BACKEND + " build", "");
  EXPECT_EQ(r.exit_code, 0);
  // The backend's unprefixed confirmation line passed through to stdout.
  EXPECT_NE(r.output.find("confirmed tree-ready"), std::string::npos);
}

TEST(WafeBinary, XNameInvocationConvention) {
  // ln -s wafe x<backend> && ./x<backend> spawns <backend>.
  std::string helper_dir = WAFE_TEST_BACKEND;
  helper_dir = helper_dir.substr(0, helper_dir.rfind('/'));
  std::string link = helper_dir + "/xwafe_backend";
  ::unlink(link.c_str());
  ASSERT_EQ(::symlink(WAFE_BINARY, link.c_str()), 0);
  // The x-name convention resolves the backend via PATH.
  std::string command = "PATH=\"" + helper_dir + ":$PATH\" " + link + " build";
  RunResult r = RunWithInput(command, "");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("confirmed tree-ready"), std::string::npos);
  ::unlink(link.c_str());
}

TEST(WafeBinary, XrmOptionSeedsDatabase) {
  RunResult r = RunWithInput(std::string(WAFE_BINARY) + " -xrm '*myLabel.label: FromXrm'",
                             "label myLabel topLevel\n"
                             "echo [gV myLabel label]\n"
                             "quit\n");
  EXPECT_NE(r.output.find("FromXrm"), std::string::npos);
}

TEST(WafeBinary, InitComResourceSendsStartupGoal) {
  // The paper's Prolog pattern: "-xrm '*InitCom: ...'" sends an initial
  // command to the backend right after the fork; the `initcom` helper waits
  // for it and reports it back in a label.
  // `timeout` guards the deadlock case (backend waiting for an InitCom that
  // never arrives): the test then fails with exit code 124 instead of
  // hanging.
  RunResult r = RunWithInput(std::string("timeout 10 ") + WAFE_BINARY +
                                 " -xrm '*initCom: start_goal.' " + WAFE_TEST_BACKEND +
                                 " initcom",
                             "");
  EXPECT_EQ(r.exit_code, 0);
}

#ifdef WAFE_SCRIPT_DIR
TEST(WafeBinary, ShippedScriptsRun) {
  for (const char* script : {"hello.wafe", "inspect.wafe", "resources.wafe", "layout.wafe"}) {
    RunResult r = RunWithInput(
        std::string(WAFE_BINARY) + " --f " + WAFE_SCRIPT_DIR + "/" + script, "");
    EXPECT_EQ(r.exit_code, 0) << script;
    EXPECT_FALSE(r.output.empty()) << script;
  }
  RunResult inspect =
      RunWithInput(std::string(WAFE_BINARY) + " --f " + WAFE_SCRIPT_DIR + "/inspect.wafe", "");
  EXPECT_NE(inspect.output.find("42\n"), std::string::npos);
}
#endif

TEST(WafeBinary, HelpOption) {
  RunResult r = RunWithInput(std::string(WAFE_BINARY) + " --help", "");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

}  // namespace
