// The UI harness suite (ctest label `ui`): end-to-end interactions driven
// entirely through synthetic events — button clicks reaching callbacks and
// the backend channel, keystrokes echoing through the Text widget, menus
// popping up and down — with golden-render assertions over the framebuffer
// and the window tree.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers/ui_harness.h"
#include "src/xsim/event.h"

namespace {

using ui_harness::UiHarness;

// --- Command click -> backend stdin ------------------------------------------------

TEST(UiHarnessTest, CommandClickSendsCallbackStringToBackend) {
  UiHarness ui;
  ui.AttachBackendPipe();
  ui.Eval("command b topLevel label Press callback {echo pressed:b}");
  ui.Realize();
  ui.Click("b");
  ui.Pump();
  std::vector<std::string> lines = ui.BackendReceived();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "pressed:b");
}

TEST(UiHarnessTest, EachClickSendsOneLine) {
  UiHarness ui;
  ui.AttachBackendPipe();
  ui.Eval("command b topLevel label Press callback {echo hit}");
  ui.Realize();
  ui.Click("b");
  ui.Click("b");
  ui.Click("b");
  ui.Pump();
  EXPECT_EQ(ui.BackendReceived(), (std::vector<std::string>{"hit", "hit", "hit"}));
}

TEST(UiHarnessTest, InsensitiveCommandStaysSilent) {
  UiHarness ui;
  ui.AttachBackendPipe();
  ui.Eval("command b topLevel sensitive false callback {echo hit}");
  ui.Realize();
  ui.Click("b");
  ui.Pump();
  EXPECT_TRUE(ui.BackendReceived().empty());
}

// --- Text keystroke echo ------------------------------------------------------------

TEST(UiHarnessTest, TextKeystrokesEchoIntoStringAndOnScreen) {
  UiHarness ui;
  ui.Eval("asciiText input topLevel editType edit width 200");
  ui.Realize();
  ui.Type("input", "hello");
  EXPECT_EQ(ui.Eval("gV input string"), "hello");
  EXPECT_TRUE(ui.ShowsText("input", "hello"));
}

TEST(UiHarnessTest, ReturnKeyRunsOverriddenTranslation) {
  UiHarness ui;
  ui.AttachBackendPipe();
  ui.Eval("asciiText input topLevel editType edit width 200");
  ui.Eval("action input override {<Key>Return: exec(echo typed [gV input string])}");
  ui.Realize();
  ui.Type("input", "120");
  ui.PressKey(xsim::kKeyReturn);
  ui.Pump();
  std::vector<std::string> lines = ui.BackendReceived();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "typed 120");
}

// --- Menu popup / popdown ------------------------------------------------------------

TEST(UiHarnessTest, MenuPopsUpOnPressAndDownOnEntryRelease) {
  UiHarness ui;
  ui.Eval("simpleMenu menu topLevel");
  ui.Eval("smeBSB open menu label Open callback {set chosen open}");
  ui.Eval("smeBSB close menu label Close callback {set chosen close}");
  ui.Eval("menuButton mb topLevel menuName menu label File");
  ui.Realize();

  xtk::Widget* menu = ui.Find("menu");
  ASSERT_NE(menu, nullptr);
  EXPECT_FALSE(ui.app().IsPoppedUp(menu));

  ui.Press("mb");
  ASSERT_TRUE(ui.app().IsPoppedUp(menu));
  EXPECT_TRUE(ui.display().IsViewable(menu->window()));

  ui.ReleaseOver("close");
  EXPECT_EQ(ui.Eval("set chosen"), "close");
  EXPECT_FALSE(ui.app().IsPoppedUp(menu));
  EXPECT_FALSE(ui.display().IsViewable(menu->window()));
}

// --- Golden render -------------------------------------------------------------------

TEST(UiHarnessTest, FramebufferChecksumStableAcrossRoundTrip) {
  UiHarness ui;
  ui.Eval("label l topLevel label {steady state} width 120 height 30");
  ui.Realize();
  const std::uint64_t before = ui.FramebufferChecksum();

  // Change the label, then change it back: pixels must end identical.
  ui.Eval("sV l label {other text}");
  ui.app().ProcessPending();
  EXPECT_NE(ui.FramebufferChecksum(), before);
  ui.Eval("sV l label {steady state}");
  ui.app().ProcessPending();
  EXPECT_EQ(ui.FramebufferChecksum(), before);
}

TEST(UiHarnessTest, WindowTreeTextReflectsLayoutAndViewability) {
  UiHarness ui;
  ui.Eval("form f topLevel");
  ui.Eval("label a f width 50 height 20");
  ui.Eval("label b f fromVert a width 50 height 20");
  ui.Realize();
  std::string tree = ui.WindowTreeText();
  // Every widget appears, depth-indented, and is viewable after realize.
  EXPECT_NE(tree.find("topLevel"), std::string::npos);
  EXPECT_NE(tree.find("\n  f "), std::string::npos);
  EXPECT_NE(tree.find("\n    a 50x20"), std::string::npos);
  EXPECT_NE(tree.find("\n    b 50x20"), std::string::npos);
  // Everything realized and managed reports viewable.
  EXPECT_NE(tree.find(" viewable"), std::string::npos);

  // The same UI built again yields the identical golden tree.
  UiHarness ui2;
  ui2.Eval("form f topLevel");
  ui2.Eval("label a f width 50 height 20");
  ui2.Eval("label b f fromVert a width 50 height 20");
  ui2.Realize();
  EXPECT_EQ(ui2.WindowTreeText(), tree);
}

TEST(UiHarnessTest, ClickFeedbackRendersAndClears) {
  UiHarness ui;
  ui.Eval("command b topLevel label Press width 80 height 24");
  ui.Realize();
  const std::uint64_t idle = ui.FramebufferChecksum();
  // While the button is held it renders pressed-in (different pixels).
  ui.Press("b");
  EXPECT_NE(ui.FramebufferChecksum(), idle);
  ui.Release("b");
  // Move the pointer well away so the leave-window reset runs.
  ui.display().InjectMotion(500, 500);
  ui.app().ProcessPending();
  EXPECT_EQ(ui.FramebufferChecksum(), idle);
}

}  // namespace
