#include "tests/oracle/wtcl_exec.h"

#include "src/tcl/interp.h"

namespace oracle {

namespace {

Outcome Run(const std::string& script, bool precompile) {
  wtcl::Interp interp;
  Outcome out;
  interp.set_output([&out](const std::string& text) { out.output += text; });
  // Keep runaway generated scripts from wedging the oracle; generous enough
  // that no legitimate corpus case comes near it.
  interp.set_max_steps(2000000);
  if (precompile) {
    (void)interp.Precompile(script);
  }
  wtcl::Result r = interp.Eval(script);
  out.code = static_cast<int>(r.code);  // Status mirrors catch numbering
  out.result = r.value;
  if (r.code == wtcl::Status::kError && interp.error_trace_active()) {
    interp.GetGlobalVar("errorInfo", &out.error_info);
  }
  return out;
}

}  // namespace

Outcome RunWtcl(const std::string& script) { return Run(script, false); }

Outcome RunWtclCached(const std::string& script) { return Run(script, true); }

}  // namespace oracle
