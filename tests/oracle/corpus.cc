#include "tests/oracle/corpus.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>

namespace oracle {

namespace {

// Splits text into lines without their terminators; a trailing newline does
// not produce a final empty line.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string JoinBody(const std::vector<std::string>& lines, std::size_t begin,
                     std::size_t end) {
  std::string body;
  for (std::size_t i = begin; i < end; ++i) {
    if (i != begin) body += '\n';
    body += lines[i];
  }
  return body;
}

}  // namespace

bool ParseCase(const std::string& text, Case* out, std::string* error) {
  std::vector<std::string> lines = SplitLines(text);
  *out = Case();
  bool saw_script = false;
  std::size_t i = 0;
  // Leading comments / blank lines before the first section.
  while (i < lines.size() && lines[i].rfind("%%", 0) != 0) {
    if (!lines[i].empty() && lines[i][0] != '#') {
      if (error) *error = "text before first %% section: " + lines[i];
      return false;
    }
    ++i;
  }
  while (i < lines.size()) {
    std::string header = lines[i].substr(2);
    while (!header.empty() && header.front() == ' ') header.erase(0, 1);
    std::size_t body_begin = ++i;
    while (i < lines.size() && lines[i].rfind("%%", 0) != 0) ++i;
    std::size_t space = header.find(' ');
    std::string key = header.substr(0, space);
    std::string arg = space == std::string::npos ? "" : header.substr(space + 1);
    std::string body = JoinBody(lines, body_begin, i);
    if (key == "script") {
      out->script = body;
      saw_script = true;
    } else if (key == "flags") {
      out->flags = arg;
    } else if (key == "code") {
      out->expect.code = std::atoi(arg.c_str());
      out->has_expect = true;
    } else if (key == "result") {
      out->expect.result = body;
      out->has_expect = true;
    } else if (key == "errorinfo") {
      out->expect.error_info = body;
      out->has_expect = true;
    } else if (key == "output") {
      out->expect.output = body;
      out->has_expect = true;
    } else {
      if (error) *error = "unknown corpus section \"" + key + "\"";
      return false;
    }
  }
  if (!saw_script) {
    if (error) *error = "corpus case has no %% script section";
    return false;
  }
  return true;
}

std::string SerializeCase(const Case& c) {
  std::string text = "# oracle spec case";
  if (!c.name.empty()) text += ": " + c.name;
  text += '\n';
  if (!c.flags.empty()) text += "%% flags " + c.flags + '\n';
  text += "%% script\n" + c.script + '\n';
  text += "%% code " + std::to_string(c.expect.code) + '\n';
  text += "%% result\n" + c.expect.result + '\n';
  if (!c.expect.error_info.empty()) {
    text += "%% errorinfo\n" + c.expect.error_info + '\n';
  }
  if (!c.expect.output.empty()) {
    text += "%% output\n" + c.expect.output + '\n';
  }
  return text;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return n == text.size();
}

bool LoadCorpusDir(const std::string& dir, std::vector<Case>* out,
                   std::string* error) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    if (error) *error = "cannot open corpus dir " + dir;
    return false;
  }
  std::vector<std::string> names;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".test") == 0) {
      names.push_back(name);
    }
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::string path = dir + "/" + name;
    std::string text;
    if (!ReadFile(path, &text)) {
      if (error) *error = "cannot read " + path;
      return false;
    }
    Case c;
    std::string perr;
    if (!ParseCase(text, &c, &perr)) {
      if (error) *error = path + ": " + perr;
      return false;
    }
    c.name = name.substr(0, name.size() - 5);
    c.path = path;
    out->push_back(std::move(c));
  }
  return true;
}

}  // namespace oracle
