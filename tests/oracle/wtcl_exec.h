// Runs oracle case scripts through wtcl, mirroring the reference driver's
// per-case isolation: every script evaluates in a fresh Interp with output
// captured.
#ifndef TESTS_ORACLE_WTCL_EXEC_H_
#define TESTS_ORACLE_WTCL_EXEC_H_

#include <string>

#include "tests/oracle/oracle_common.h"

namespace oracle {

// Fresh interp, single Eval.
Outcome RunWtcl(const std::string& script);

// Fresh interp, but the script is precompiled first so the subsequent Eval
// executes through a compile-cache hit — the cached-dispatch path that PR 5
// introduced. State is identical to RunWtcl (precompilation executes
// nothing), so the two outcomes must match byte-exactly.
Outcome RunWtclCached(const std::string& script);

}  // namespace oracle

#endif  // TESTS_ORACLE_WTCL_EXEC_H_
