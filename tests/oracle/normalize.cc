#include "tests/oracle/normalize.h"

#include <cstddef>

namespace oracle {

namespace {

// Longest command text kept when comparing errorInfo traces: below both
// wtcl's 60-char and Tcl 8.6's 150-char display truncation limits.
constexpr std::size_t kTraceCommandLimit = 55;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string TrimLeft(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Extracts the quoted token after `prefix`, e.g. the "08" out of
// `expected integer but got "08"`. Empty when the shape does not match.
std::string QuotedToken(const std::string& message, const char* prefix) {
  if (!StartsWith(message, prefix)) return "";
  std::size_t start = std::string(prefix).size();
  std::size_t end = message.find('"', start);
  if (end == std::string::npos) return "";
  return message.substr(start, end - start);
}

bool IsConnective(const std::string& trimmed) {
  return trimmed == "while executing" || trimmed == "invoked from within" ||
         trimmed == "while compiling" || trimmed.empty() ||
         trimmed[0] == '(' || trimmed == "...";
}

// Whether a trace line that opened with `"` has reached its closing quote:
// either a bare `"` at the end, or wtcl's `" (line N, level M)` suffix.
// Multi-line commands (loop bodies with embedded newlines) leave the quote
// open across lines.
bool ClosesQuote(const std::string& line) {
  if (line.size() >= 2 && line.back() == '"') return true;
  return line.back() == ')' && line.rfind("\" (line ") != std::string::npos;
}

}  // namespace

std::string NormalizeError(const std::string& message) {
  // First line only: Tcl 8.6 expr errors append `in expression "..."` hint
  // lines that wtcl does not produce.
  std::string first = message.substr(0, message.find('\n'));

  // Index-parse family: Tcl 8.6 says `bad index "T": must be
  // integer?[+-]integer? or end?[+-]integer?`; canonicalize to the token.
  std::string token = QuotedToken(first, "bad index \"");
  if (!token.empty()) return "bad index \"" + token + "\"";

  // Malformed-integer family: wtcl's central parser says `expected integer
  // but got "T"`; Tcl 8.6's expr says `invalid bareword "T" ... (invalid
  // octal number?)` for the same leading-zero digit runs.
  token = QuotedToken(first, "expected integer but got \"");
  if (!token.empty()) return "bad number \"" + token + "\"";
  token = QuotedToken(first, "invalid bareword \"");
  if (!token.empty() && message.find("invalid octal number") != std::string::npos) {
    return "bad number \"" + token + "\"";
  }

  // Expression syntax family: both implementations reject the expression,
  // with wording that names different parser internals.
  if (!token.empty() || StartsWith(first, "missing operand") ||
      StartsWith(first, "missing close-paren") ||
      StartsWith(first, "extra tokens at end") ||
      StartsWith(first, "empty expression") ||
      StartsWith(first, "invalid character \"") ||
      StartsWith(first, "syntax error in expression")) {
    return "expr syntax error";
  }

  // Malformed-list family: wtcl reports every list-parse failure as an
  // unmatched brace; Tcl 8.6 distinguishes braces, quotes, and junk after a
  // closing brace.
  if (StartsWith(first, "unmatched open brace in list") ||
      StartsWith(first, "unmatched open quote in list") ||
      StartsWith(first, "list element in braces followed by") ||
      StartsWith(first, "list element in quotes followed by")) {
    return "malformed list";
  }

  return first;
}

std::string NormalizeErrorInfo(const std::string& info) {
  std::vector<std::string> lines = SplitLines(info);
  // The message spans the leading lines, up to the first connective or
  // quoted-command line.
  std::string message;
  std::size_t i = 0;
  for (; i < lines.size(); ++i) {
    std::string trimmed = TrimLeft(lines[i]);
    if ((i > 0 && IsConnective(trimmed)) ||
        (!trimmed.empty() && trimmed[0] == '"')) {
      break;
    }
    if (!message.empty()) message += '\n';
    message += lines[i];
  }
  std::string normalized = NormalizeError(message);
  for (; i < lines.size(); ++i) {
    std::string line = TrimLeft(lines[i]);
    if (line.empty() || line[0] != '"') continue;
    // Join the continuation lines of a multi-line quoted command (a loop
    // body spanning source lines) so the whole span compares as one entry.
    while (i + 1 < lines.size() && !ClosesQuote(line)) {
      ++i;
      line += '\n' + lines[i];
    }
    // Strip wtcl's ` (line N, level M)` suffix.
    if (!line.empty() && line.back() == ')') {
      std::size_t at = line.rfind("\" (line ");
      if (at != std::string::npos) line = line.substr(0, at + 1);
    }
    // Strip the surrounding quotes and any display-truncation ellipsis.
    if (line.size() >= 2 && line.back() == '"') {
      line = line.substr(1, line.size() - 2);
    } else {
      line = line.substr(1);
    }
    if (line.size() >= 3 && line.compare(line.size() - 3, 3, "...") == 0) {
      line.resize(line.size() - 3);
    }
    if (line.size() > kTraceCommandLimit) line.resize(kTraceCommandLimit);
    normalized += "\n  cmd: " + line;
  }
  return normalized;
}

namespace {

void DiffField(std::vector<std::string>* out, const char* field,
               const std::string& got, const std::string& want) {
  if (got != want) {
    out->push_back(std::string(field) + ": wtcl=[" + got + "] vs [" + want +
                   "]");
  }
}

}  // namespace

std::vector<std::string> ExactDiff(const Outcome& got, const Outcome& want,
                                   bool compare_error_info) {
  std::vector<std::string> diffs;
  if (got.code != want.code) {
    diffs.push_back("code: wtcl=" + std::to_string(got.code) + " vs " +
                    std::to_string(want.code));
  }
  DiffField(&diffs, "result", got.result, want.result);
  if (compare_error_info) {
    DiffField(&diffs, "errorInfo", got.error_info, want.error_info);
  }
  DiffField(&diffs, "output", got.output, want.output);
  return diffs;
}

std::vector<std::string> NormalizedDiff(const Outcome& wtcl,
                                        const Outcome& reference) {
  std::vector<std::string> diffs;
  if (wtcl.code != reference.code) {
    diffs.push_back("code: wtcl=" + std::to_string(wtcl.code) + " vs ref=" +
                    std::to_string(reference.code));
    // Codes disagree: the result strings are not comparable (one is an error
    // message), so report the raw values for triage and stop here.
    diffs.push_back("result: wtcl=[" + wtcl.result + "] vs ref=[" +
                    reference.result + "]");
    return diffs;
  }
  if (wtcl.code == 1) {
    std::string got = NormalizeError(wtcl.result);
    std::string want = NormalizeError(reference.result);
    if (got != want) {
      diffs.push_back("error: wtcl=[" + got + "] vs ref=[" + want + "]");
    }
    if (!wtcl.error_info.empty() && !reference.error_info.empty()) {
      std::string gi = NormalizeErrorInfo(wtcl.error_info);
      std::string wi = NormalizeErrorInfo(reference.error_info);
      if (gi != wi) {
        diffs.push_back("errorInfo: wtcl=[" + gi + "] vs ref=[" + wi + "]");
      }
    }
  } else {
    if (wtcl.result != reference.result) {
      diffs.push_back("result: wtcl=[" + wtcl.result + "] vs ref=[" +
                      reference.result + "]");
    }
  }
  if (wtcl.output != reference.output) {
    diffs.push_back("output: wtcl=[" + wtcl.output + "] vs ref=[" +
                    reference.output + "]");
  }
  return diffs;
}

}  // namespace oracle
