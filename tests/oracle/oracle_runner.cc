// Differential-oracle runner: executes spec-corpus cases through wtcl and —
// when a reference tclsh is available — through the reference, then diffs
// completion codes, results, error messages, errorInfo traces, and captured
// output.
//
// Modes (--mode):
//   embedded  wtcl vs the committed expectations, byte-exact, plus the
//             fresh-vs-cached-compile equivalence check. Needs no tclsh, so
//             CI without one still checks every committed expectation.
//   diff      wtcl vs a live reference tclsh under normalization
//             (tests/oracle/normalize.cc). Exits 77 (ctest SKIP) when no
//             tclsh is found. Cases flagged `knowndiff` are pinned
//             deviations and are skipped here (and counted in the summary).
//   both      embedded always; diff additionally when a tclsh is found.
//
// Case sources: --corpus DIR (committed *.test files), --case FILE (one
// file), --generate N --seed S (the seeded generator; no expectations, so
// embedded mode runs only the cached-equivalence check).
//
// Maintenance verbs: --record rewrites the expectations of file-backed cases
// from wtcl's current outcome (used by scripts/oracle_triage.py after a fix
// lands); --emit DIR writes every diverging case as a .test skeleton for
// triage; --print-outcomes dumps both sides of every case.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tests/oracle/corpus.h"
#include "tests/oracle/generator.h"
#include "tests/oracle/normalize.h"
#include "tests/oracle/oracle_common.h"
#include "tests/oracle/refpipe.h"
#include "tests/oracle/wtcl_exec.h"

#ifndef ORACLE_DRIVER_TCL
#define ORACLE_DRIVER_TCL ""
#endif
#ifndef ORACLE_CORPUS_DIR
#define ORACLE_CORPUS_DIR ""
#endif

namespace {

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitUsage = 2;
constexpr int kExitSkip = 77;  // ctest SKIP_RETURN_CODE

struct Options {
  std::string corpus_dir;
  std::string case_file;
  std::size_t generate = 0;
  std::uint64_t seed = 1;
  std::string mode = "both";
  std::string tclsh;
  std::string driver = ORACLE_DRIVER_TCL;
  std::string emit_dir;
  bool record = false;
  bool verbose = false;
  bool print_outcomes = false;
};

void PrintOutcome(const char* tag, const oracle::Outcome& o) {
  std::printf("  %s: code=%d result=[%s]", tag, o.code, o.result.c_str());
  if (!o.output.empty()) std::printf(" output=[%s]", o.output.c_str());
  std::printf("\n");
  if (!o.error_info.empty()) {
    std::printf("  %s errorInfo:\n%s\n", tag, o.error_info.c_str());
  }
}

int Fail(const char* message) {
  std::fprintf(stderr, "oracle_runner: %s\n", message);
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--corpus" && next(&value)) {
      opt.corpus_dir = value;
    } else if (arg == "--case" && next(&value)) {
      opt.case_file = value;
    } else if (arg == "--generate" && next(&value)) {
      opt.generate = static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--seed" && next(&value)) {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--mode" && next(&value)) {
      opt.mode = value;
    } else if (arg == "--tclsh" && next(&value)) {
      opt.tclsh = value;
    } else if (arg == "--driver" && next(&value)) {
      opt.driver = value;
    } else if (arg == "--emit" && next(&value)) {
      opt.emit_dir = value;
    } else if (arg == "--record") {
      opt.record = true;
    } else if (arg == "--print-outcomes") {
      opt.print_outcomes = true;
    } else if (arg == "-v" || arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Fail(("unknown or incomplete option: " + arg).c_str());
    }
  }
  if (opt.mode != "embedded" && opt.mode != "diff" && opt.mode != "both") {
    return Fail("--mode must be embedded, diff, or both");
  }

  // --- Assemble the case list ----------------------------------------------
  std::vector<oracle::Case> cases;
  std::string error;
  if (opt.corpus_dir.empty() && opt.case_file.empty() && opt.generate == 0) {
    opt.corpus_dir = ORACLE_CORPUS_DIR;
    if (opt.corpus_dir.empty()) {
      return Fail("no cases: pass --corpus, --case, or --generate");
    }
  }
  if (!opt.corpus_dir.empty() &&
      !oracle::LoadCorpusDir(opt.corpus_dir, &cases, &error)) {
    return Fail(error.c_str());
  }
  if (!opt.case_file.empty()) {
    std::string text;
    if (!oracle::ReadFile(opt.case_file, &text)) {
      return Fail(("cannot read " + opt.case_file).c_str());
    }
    oracle::Case c;
    if (!oracle::ParseCase(text, &c, &error)) {
      return Fail((opt.case_file + ": " + error).c_str());
    }
    c.path = opt.case_file;
    std::size_t slash = opt.case_file.find_last_of('/');
    c.name = slash == std::string::npos ? opt.case_file
                                        : opt.case_file.substr(slash + 1);
    cases.push_back(std::move(c));
  }
  if (opt.generate > 0) {
    std::vector<oracle::Case> generated =
        oracle::GenerateCases(opt.seed, opt.generate);
    cases.insert(cases.end(), generated.begin(), generated.end());
  }
  if (cases.empty()) return Fail("case list is empty");

  // --- Record mode: refresh expectations and exit --------------------------
  if (opt.record) {
    std::size_t written = 0;
    for (oracle::Case& c : cases) {
      oracle::Outcome got = oracle::RunWtcl(c.script);
      c.expect = got;
      c.has_expect = true;
      if (!c.path.empty()) {
        if (!oracle::WriteFile(c.path, oracle::SerializeCase(c))) {
          return Fail(("cannot write " + c.path).c_str());
        }
        ++written;
      } else {
        std::printf("%s\n%s", c.name.c_str(), oracle::SerializeCase(c).c_str());
      }
    }
    std::printf("oracle: recorded expectations for %zu case(s), %zu file(s) rewritten\n",
                cases.size(), written);
    return kExitOk;
  }

  // --- Reference connection (diff modes) -----------------------------------
  bool want_diff = opt.mode == "diff" || opt.mode == "both";
  std::unique_ptr<oracle::ReferenceTcl> ref;
  if (want_diff) {
    std::string tclsh = !opt.tclsh.empty() ? opt.tclsh : oracle::FindReferenceTclsh();
    if (tclsh.empty()) {
      if (opt.mode == "diff") {
        std::printf("oracle: no reference tclsh found (set WAFE_TCLSH or add "
                    "tclsh to PATH); skipping differential mode\n");
        return kExitSkip;
      }
      std::printf("oracle: no reference tclsh found; running embedded checks only\n");
      want_diff = false;
    } else {
      if (opt.driver.empty()) return Fail("--driver path to oracle_driver.tcl missing");
      ref.reset(new oracle::ReferenceTcl(tclsh, opt.driver));
      if (!ref->ok()) return Fail(ref->error().c_str());
      if (opt.verbose) std::printf("oracle: reference = %s\n", tclsh.c_str());
    }
  }
  bool run_embedded = opt.mode == "embedded" || opt.mode == "both";

  // --- Evaluate ------------------------------------------------------------
  std::size_t divergences = 0;
  std::size_t embedded_checked = 0;
  std::size_t diff_checked = 0;
  std::size_t knowndiff_skipped = 0;
  std::size_t emitted = 0;
  for (const oracle::Case& c : cases) {
    std::vector<std::string> complaints;
    oracle::Outcome got = oracle::RunWtcl(c.script);

    // Cached-compile equivalence: the same script through a compile-cache
    // hit must behave identically, expectations or not.
    oracle::Outcome cached = oracle::RunWtclCached(c.script);
    for (const std::string& d : oracle::ExactDiff(got, cached)) {
      complaints.push_back("fresh-vs-cached " + d);
    }

    if (run_embedded && c.has_expect) {
      ++embedded_checked;
      for (const std::string& d : oracle::ExactDiff(got, c.expect)) {
        complaints.push_back("embedded " + d);
      }
    }

    oracle::Outcome refout;
    bool have_ref = false;
    if (want_diff && ref != nullptr) {
      if (c.KnownDiff()) {
        ++knowndiff_skipped;
      } else if (!ref->Eval(c.script, &refout)) {
        complaints.push_back("reference failure: " + ref->error());
        ref.reset();  // driver is dead; stop diffing but finish embedded
      } else {
        have_ref = true;
        ++diff_checked;
        for (const std::string& d : oracle::NormalizedDiff(got, refout)) {
          complaints.push_back("diff " + d);
        }
      }
    }

    if (opt.print_outcomes) {
      std::printf("== %s\n--- script\n%s\n", c.name.c_str(), c.script.c_str());
      PrintOutcome("wtcl", got);
      if (have_ref) PrintOutcome("ref", refout);
    }

    if (!complaints.empty()) {
      ++divergences;
      std::printf("DIVERGENCE %s\n--- script\n%s\n", c.name.c_str(),
                  c.script.c_str());
      for (const std::string& d : complaints) {
        std::printf("  %s\n", d.c_str());
      }
      if (!opt.print_outcomes) {
        PrintOutcome("wtcl", got);
        if (have_ref) PrintOutcome("ref", refout);
      }
      if (!opt.emit_dir.empty()) {
        oracle::Case skeleton = c;
        skeleton.expect = got;
        skeleton.has_expect = true;
        std::string path = opt.emit_dir + "/" + c.name + ".test";
        if (oracle::WriteFile(path, oracle::SerializeCase(skeleton))) {
          std::printf("  emitted %s\n", path.c_str());
          ++emitted;
        }
      }
    } else if (opt.verbose) {
      std::printf("ok %s\n", c.name.c_str());
    }
  }

  std::printf(
      "oracle: %zu case(s), %zu embedded-checked, %zu diffed against "
      "reference, %zu knowndiff pinned, %zu divergence(s)%s\n",
      cases.size(), embedded_checked, diff_checked, knowndiff_skipped,
      divergences,
      emitted ? (", " + std::to_string(emitted) + " emitted").c_str() : "");
  return divergences == 0 ? kExitOk : kExitDivergence;
}
