// Seeded spec-corpus generator. Produces deterministic case scripts over the
// grammars where wtcl and a reference Tcl are most likely to disagree:
//
//   - expr over the ClassifyNumber edge grammar: base-0 octal/hex literals,
//     leading-zero digit runs routed through variables, floored division,
//     comparisons, ternaries, and the math functions;
//   - the shared index grammar (string index/range, lindex/lrange,
//     linsert/lreplace) with end-N, out-of-range, whitespace-padded, and
//     malformed indices;
//   - list/string command compositions over quoting-heavy values, driven
//     through variables so cached list/number reps shimmer between uses;
//   - proc/error-trace scenarios: failing leaves under nested procs and
//     foreach/while bodies, exercising errorInfo shapes.
//
// The same (seed, count) always yields the same cases, so a divergence found
// in CI reproduces locally from its printed case name and script.
#ifndef TESTS_ORACLE_GENERATOR_H_
#define TESTS_ORACLE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "tests/oracle/oracle_common.h"

namespace oracle {

std::vector<Case> GenerateCases(std::uint64_t seed, std::size_t count);

}  // namespace oracle

#endif  // TESTS_ORACLE_GENERATOR_H_
