#include "tests/oracle/generator.h"

#include <cstdlib>
#include <string>

namespace oracle {

namespace {

// xorshift64* — deterministic across platforms, no <random> distribution
// portability concerns.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15u) {}

  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1du;
  }

  std::size_t Below(std::size_t n) { return static_cast<std::size_t>(Next() % n); }

  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    return pool[Below(pool.size())];
  }

 private:
  std::uint64_t state_;
};

// --- Operand pools ----------------------------------------------------------

// Integer-valued literals kept small enough that no generated combination
// can leave [LONG_MIN, LONG_MAX]: wtcl wraps 64-bit arithmetic while Tcl
// 8.6 promotes to bignums, so overflow territory is a documented deviation
// (pinned by knowndiff corpus entries), not generator ground.
const std::vector<std::string>& IntLiterals() {
  static const std::vector<std::string> pool = {
      "0",   "1",    "-1",   "7",         "12",   "42",        "-9",
      "010", "0x1f", "-0x20", "0777",     "0xff", "2147483647", "-2147483648",
  };
  return pool;
}

const std::vector<std::string>& DoubleLiterals() {
  static const std::vector<std::string> pool = {
      "1.5", "-0.75", ".5", "2.", "1e3", "1e-3", "0.0", "3.25", "6.02e2",
  };
  return pool;
}

// Leading-zero digit runs: invalid octals that must be hard errors, never
// silently parsed as doubles. Routed through variables so both the literal
// tokenizer and the cached-Value classification paths are exercised.
const std::vector<std::string>& BadIntegers() {
  static const std::vector<std::string> pool = {"08", "09", "0778", "0128"};
  return pool;
}

const std::vector<std::string>& Subjects() {
  static const std::vector<std::string> pool = {
      "abcdef", "a b c", "hello world", "", "x", "  padded  ",
      "one{two", "tab\there",
  };
  return pool;
}

const std::vector<std::string>& Lists() {
  static const std::vector<std::string> pool = {
      "{a b c}",
      "{a {b c} d}",
      "{}",
      "{one}",
      "{ a  b }",
      "{{x y} {p q} r}",
      "{1 2 3 4 5}",
      "{alpha beta gamma delta}",
  };
  return pool;
}

const std::vector<std::string>& Indices() {
  static const std::vector<std::string> pool = {
      "-2", "-1", "0",     "1",     "2",     "5",     "100",  "end",
      "end-1", "end-2", "end-5", "end-0", " 1 ", "0x1", "010",
  };
  return pool;
}

const std::vector<std::string>& BadIndices() {
  static const std::vector<std::string> pool = {"foo", "08", "end-foo", "1.5"};
  return pool;
}

// Needles for `string first`/`string last`: never empty — Tcl 8.6 defines
// an empty needle as "not found" (-1) while a naive substring search finds
// it at 0, so the empty case is pinned by a corpus entry instead.
const std::vector<std::string>& Needles() {
  static const std::vector<std::string> pool = {"a", "b", "c", "ab", "lo",
                                                "z",  " ", "de"};
  return pool;
}

const std::vector<std::string>& GlobPatterns() {
  static const std::vector<std::string> pool = {
      "*",     "a*",    "*c*",   "?b*", "[a-c]*",
      "*world", "h?llo*", "*b c*", "x",   "[xyz]",
  };
  return pool;
}

const std::vector<std::string>& ArrayKeys() {
  static const std::vector<std::string> pool = {"a", "b", "k1", "k2",
                                                "key", "x9"};
  return pool;
}

// --- Families ---------------------------------------------------------------

std::string GenExpr(Rng& rng) {
  const std::vector<std::string> int_ops = {"+", "-",  "*",  "/",  "%",
                                            "<", "<=", ">",  ">=", "==",
                                            "!=", "&&", "||"};
  const std::vector<std::string> dbl_ops = {"+", "-", "*", "<", "<=", ">",
                                            ">=", "==", "!="};
  const std::vector<std::string> funcs = {"abs", "int", "round", "double"};
  switch (rng.Below(6)) {
    case 0: {  // int op int
      return "expr {" + rng.Pick(IntLiterals()) + " " + rng.Pick(int_ops) +
             " " + rng.Pick(IntLiterals()) + "}";
    }
    case 1: {  // mixed int/double
      return "expr {" + rng.Pick(DoubleLiterals()) + " " + rng.Pick(dbl_ops) +
             " " + rng.Pick(IntLiterals()) + "}";
    }
    case 2: {  // parenthesized composition
      return "expr {(" + rng.Pick(IntLiterals()) + " " + rng.Pick(int_ops) +
             " " + rng.Pick(IntLiterals()) + ") " + rng.Pick(int_ops) + " " +
             rng.Pick(IntLiterals()) + "}";
    }
    case 3: {  // math function application
      return "expr {" + rng.Pick(funcs) + "(" +
             (rng.Below(2) ? rng.Pick(IntLiterals())
                           : rng.Pick(DoubleLiterals())) +
             ")}";
    }
    case 4: {  // variable operand, sometimes a malformed integer
      std::string value = rng.Below(3) == 0 ? rng.Pick(BadIntegers())
                                            : rng.Pick(IntLiterals());
      return "set x " + value + "\nexpr {$x " + rng.Pick(int_ops) + " " +
             rng.Pick(IntLiterals()) + "}";
    }
    default: {  // ternary over a comparison — decimal branches only: Tcl 8.6
      // leaks an octal/hex branch literal uncanonicalized when the condition
      // is not constant-folded (pinned by knowndiff-ternary-literal).
      const std::vector<std::string> decimals = {"0", "1", "-1", "7",
                                                 "12", "42", "-9"};
      return "expr {" + rng.Pick(IntLiterals()) + " < " +
             rng.Pick(IntLiterals()) + " ? " + rng.Pick(decimals) +
             " : " + rng.Pick(DoubleLiterals()) + "}";
    }
  }
}

std::string GenIndex(Rng& rng) {
  std::string index = rng.Below(4) == 0 ? rng.Pick(BadIndices())
                                        : rng.Pick(Indices());
  switch (rng.Below(6)) {
    case 0:
      return "string index \"" + rng.Pick(Subjects()) + "\" " +
             "{" + index + "}";
    case 1:
      return "string range \"" + rng.Pick(Subjects()) + "\" {" + index +
             "} {" + rng.Pick(Indices()) + "}";
    case 2:
      return "lindex " + rng.Pick(Lists()) + " {" + index + "}";
    case 3:
      return "lrange " + rng.Pick(Lists()) + " {" + index + "} {" +
             rng.Pick(Indices()) + "}";
    case 4:
      return "linsert " + rng.Pick(Lists()) + " {" + index + "} X";
    default:
      return "string range \"" + rng.Pick(Subjects()) + "\" 0 {" + index + "}";
  }
}

std::string GenListString(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
      return "llength " + rng.Pick(Lists());
    case 1:
      return "lsearch " + std::string(rng.Below(2) ? "-exact " : "") +
             rng.Pick(Lists()) + " " + (rng.Below(2) ? "b" : "{*a*}");
    case 2:
      return "lsort " + std::string(rng.Below(2) ? "-decreasing " : "") +
             rng.Pick(Lists());
    case 3:
      return "lsort -integer {3 1 010 0x2 -5}";
    case 4:
      return "join " + rng.Pick(Lists()) + " {" +
             (rng.Below(2) ? "-" : ", ") + "}";
    case 5:
      return "split \"" + rng.Pick(Subjects()) + "\" { }";
    case 6:
      return "concat " + rng.Pick(Lists()) + " " + rng.Pick(Lists());
    case 7:
      return "string " + std::string(rng.Below(2) ? "tolower" : "toupper") +
             " \"" + rng.Pick(Subjects()) + "\"";
    case 8:
      return "string compare \"" + rng.Pick(Subjects()) + "\" \"" +
             rng.Pick(Subjects()) + "\"";
    default: {
      // Shimmer composition: list rep cached on a variable, then reused and
      // mutated through lappend/linsert while a copy is held elsewhere.
      std::string script = "set l " + rng.Pick(Lists()) + "\n";
      script += "set keep $l\n";
      script += "lappend l " + rng.Pick(IntLiterals()) + "\n";
      script += "list [llength $l] [llength $keep] [lindex $l end] [lindex $keep 0]";
      return script;
    }
  }
}

std::string GenErrorTrace(Rng& rng) {
  const std::vector<std::string> leaves = {
      "error boom",
      "expr {1 / 0}",
      "set q [expr {$v / 0}]",
      "lindex {a b} nosuch",
      "nosuchcommand 1 2",
      "string index abc bad",
  };
  std::string leaf = rng.Pick(leaves);
  switch (rng.Below(4)) {
    case 0: {  // nested procs, depth 2-3
      std::string script = "proc leaf {v} {" + leaf + "}\n";
      script += "proc mid {v} {leaf $v}\n";
      if (rng.Below(2)) {
        script += "proc top {} {mid 3}\ntop";
      } else {
        script += "mid 3";
      }
      return script;
    }
    case 1:  // failure inside a foreach body
      return "foreach v {1 2 3} {" + leaf + "}";
    case 2:  // failure inside a while body
      return "set v 0\nwhile {$v < 3} {incr v\n" + leaf + "}";
    default:  // caught then re-raised: errorInfo must reflect the re-raise
      return "proc leaf {v} {" + leaf + "}\ncatch {leaf 5} msg\nerror $msg";
  }
}

// `string` subcommand surface beyond the index/range family: length, case
// mapping, trimming with explicit character sets, glob matching, and
// substring search, plus compositions that pipe one subcommand into another.
std::string GenStringSub(Rng& rng) {
  const std::vector<std::string> trims = {"trim", "trimleft", "trimright"};
  const std::vector<std::string> trim_chars = {" ", "ab", "x ", "de f"};
  switch (rng.Below(8)) {
    case 0:
      return "string length \"" + rng.Pick(Subjects()) + "\"";
    case 1: {  // default whitespace trim
      return "string " + rng.Pick(trims) + " \"" + rng.Pick(Subjects()) + "\"";
    }
    case 2: {  // trim with an explicit character set
      return "string " + rng.Pick(trims) + " \"" + rng.Pick(Subjects()) +
             "\" {" + rng.Pick(trim_chars) + "}";
    }
    case 3:
      return "string match {" + rng.Pick(GlobPatterns()) + "} \"" +
             rng.Pick(Subjects()) + "\"";
    case 4:
      return "string " + std::string(rng.Below(2) ? "first" : "last") + " {" +
             rng.Pick(Needles()) + "} \"" + rng.Pick(Subjects()) + "\"";
    case 5: {  // composition: search inside a case-mapped / trimmed subject
      return "string first {" + rng.Pick(Needles()) + "} [string tolower \"" +
             rng.Pick(Subjects()) + "\"]";
    }
    case 6: {  // length of a trimmed subject
      return "string length [string trim \"" + rng.Pick(Subjects()) + "\"]";
    }
    default: {  // match against a variable holding the pattern
      return "set p {" + rng.Pick(GlobPatterns()) + "}\nstring match $p \"" +
             rng.Pick(Subjects()) + "\"";
    }
  }
}

// Associative-array surface. `array names`/`array get` enumerate in hash
// order in the reference Tcl, so every multi-element observation is wrapped
// in lsort or narrowed to a single key by pattern.
std::string GenArray(Rng& rng) {
  std::string k1 = rng.Pick(ArrayKeys());
  std::string k2 = rng.Pick(ArrayKeys());
  std::string v1 = rng.Pick(IntLiterals());
  std::string v2 = rng.Pick(IntLiterals());
  switch (rng.Below(6)) {
    case 0: {  // array set then sorted names
      return "array set a {" + k1 + " " + v1 + " " + k2 + " " + v2 +
             "}\nlsort [array names a]";
    }
    case 1: {  // element writes, then size/exists introspection
      return "set a(" + k1 + ") " + v1 + "\nset a(" + k2 + ") " + v2 +
             "\nlist [array size a] [array exists a] [array exists nosuch]";
    }
    case 2: {  // get narrowed to one key: deterministic single pair
      return "array set a {" + k1 + " " + v1 + " zz 0}\narray get a {" + k1 +
             "}";
    }
    case 3: {  // glob-filtered names, sorted
      return "array set a {" + k1 + " 1 " + k2 + " 2 other 3}\nlsort [array "
             "names a {" + rng.Pick(GlobPatterns()) + "}]";
    }
    case 4: {  // odd-length init list is a hard error in both implementations
      return "array set a {" + k1 + " " + v1 + " dangling}";
    }
    default: {  // scalar is not an array; missing array reads as empty
      return "set s " + rng.Pick(IntLiterals()) +
             "\nlist [array exists s] [array size s] [array names s] "
             "[array size nosuch] [array get nosuch]";
    }
  }
}

}  // namespace

std::vector<Case> GenerateCases(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Case> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Case c;
    switch (rng.Below(6)) {
      case 0:
        c.name = "gen-expr-" + std::to_string(i);
        c.script = GenExpr(rng);
        break;
      case 1:
        c.name = "gen-index-" + std::to_string(i);
        c.script = GenIndex(rng);
        break;
      case 2:
        c.name = "gen-liststring-" + std::to_string(i);
        c.script = GenListString(rng);
        break;
      case 3:
        c.name = "gen-string-" + std::to_string(i);
        c.script = GenStringSub(rng);
        break;
      case 4:
        c.name = "gen-array-" + std::to_string(i);
        c.script = GenArray(rng);
        break;
      default:
        c.name = "gen-errtrace-" + std::to_string(i);
        c.script = GenErrorTrace(rng);
        break;
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace oracle
