#include "tests/oracle/generator.h"

#include <cstdlib>
#include <string>

namespace oracle {

namespace {

// xorshift64* — deterministic across platforms, no <random> distribution
// portability concerns.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15u) {}

  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1du;
  }

  std::size_t Below(std::size_t n) { return static_cast<std::size_t>(Next() % n); }

  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    return pool[Below(pool.size())];
  }

 private:
  std::uint64_t state_;
};

// --- Operand pools ----------------------------------------------------------

// Integer-valued literals kept small enough that no generated combination
// can leave [LONG_MIN, LONG_MAX]: wtcl wraps 64-bit arithmetic while Tcl
// 8.6 promotes to bignums, so overflow territory is a documented deviation
// (pinned by knowndiff corpus entries), not generator ground.
const std::vector<std::string>& IntLiterals() {
  static const std::vector<std::string> pool = {
      "0",   "1",    "-1",   "7",         "12",   "42",        "-9",
      "010", "0x1f", "-0x20", "0777",     "0xff", "2147483647", "-2147483648",
  };
  return pool;
}

const std::vector<std::string>& DoubleLiterals() {
  static const std::vector<std::string> pool = {
      "1.5", "-0.75", ".5", "2.", "1e3", "1e-3", "0.0", "3.25", "6.02e2",
  };
  return pool;
}

// Leading-zero digit runs: invalid octals that must be hard errors, never
// silently parsed as doubles. Routed through variables so both the literal
// tokenizer and the cached-Value classification paths are exercised.
const std::vector<std::string>& BadIntegers() {
  static const std::vector<std::string> pool = {"08", "09", "0778", "0128"};
  return pool;
}

const std::vector<std::string>& Subjects() {
  static const std::vector<std::string> pool = {
      "abcdef", "a b c", "hello world", "", "x", "  padded  ",
      "one{two", "tab\there",
  };
  return pool;
}

const std::vector<std::string>& Lists() {
  static const std::vector<std::string> pool = {
      "{a b c}",
      "{a {b c} d}",
      "{}",
      "{one}",
      "{ a  b }",
      "{{x y} {p q} r}",
      "{1 2 3 4 5}",
      "{alpha beta gamma delta}",
  };
  return pool;
}

const std::vector<std::string>& Indices() {
  static const std::vector<std::string> pool = {
      "-2", "-1", "0",     "1",     "2",     "5",     "100",  "end",
      "end-1", "end-2", "end-5", "end-0", " 1 ", "0x1", "010",
  };
  return pool;
}

const std::vector<std::string>& BadIndices() {
  static const std::vector<std::string> pool = {"foo", "08", "end-foo", "1.5"};
  return pool;
}

// --- Families ---------------------------------------------------------------

std::string GenExpr(Rng& rng) {
  const std::vector<std::string> int_ops = {"+", "-",  "*",  "/",  "%",
                                            "<", "<=", ">",  ">=", "==",
                                            "!=", "&&", "||"};
  const std::vector<std::string> dbl_ops = {"+", "-", "*", "<", "<=", ">",
                                            ">=", "==", "!="};
  const std::vector<std::string> funcs = {"abs", "int", "round", "double"};
  switch (rng.Below(6)) {
    case 0: {  // int op int
      return "expr {" + rng.Pick(IntLiterals()) + " " + rng.Pick(int_ops) +
             " " + rng.Pick(IntLiterals()) + "}";
    }
    case 1: {  // mixed int/double
      return "expr {" + rng.Pick(DoubleLiterals()) + " " + rng.Pick(dbl_ops) +
             " " + rng.Pick(IntLiterals()) + "}";
    }
    case 2: {  // parenthesized composition
      return "expr {(" + rng.Pick(IntLiterals()) + " " + rng.Pick(int_ops) +
             " " + rng.Pick(IntLiterals()) + ") " + rng.Pick(int_ops) + " " +
             rng.Pick(IntLiterals()) + "}";
    }
    case 3: {  // math function application
      return "expr {" + rng.Pick(funcs) + "(" +
             (rng.Below(2) ? rng.Pick(IntLiterals())
                           : rng.Pick(DoubleLiterals())) +
             ")}";
    }
    case 4: {  // variable operand, sometimes a malformed integer
      std::string value = rng.Below(3) == 0 ? rng.Pick(BadIntegers())
                                            : rng.Pick(IntLiterals());
      return "set x " + value + "\nexpr {$x " + rng.Pick(int_ops) + " " +
             rng.Pick(IntLiterals()) + "}";
    }
    default: {  // ternary over a comparison
      return "expr {" + rng.Pick(IntLiterals()) + " < " +
             rng.Pick(IntLiterals()) + " ? " + rng.Pick(IntLiterals()) +
             " : " + rng.Pick(DoubleLiterals()) + "}";
    }
  }
}

std::string GenIndex(Rng& rng) {
  std::string index = rng.Below(4) == 0 ? rng.Pick(BadIndices())
                                        : rng.Pick(Indices());
  switch (rng.Below(6)) {
    case 0:
      return "string index \"" + rng.Pick(Subjects()) + "\" " +
             "{" + index + "}";
    case 1:
      return "string range \"" + rng.Pick(Subjects()) + "\" {" + index +
             "} {" + rng.Pick(Indices()) + "}";
    case 2:
      return "lindex " + rng.Pick(Lists()) + " {" + index + "}";
    case 3:
      return "lrange " + rng.Pick(Lists()) + " {" + index + "} {" +
             rng.Pick(Indices()) + "}";
    case 4:
      return "linsert " + rng.Pick(Lists()) + " {" + index + "} X";
    default:
      return "string range \"" + rng.Pick(Subjects()) + "\" 0 {" + index + "}";
  }
}

std::string GenListString(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
      return "llength " + rng.Pick(Lists());
    case 1:
      return "lsearch " + std::string(rng.Below(2) ? "-exact " : "") +
             rng.Pick(Lists()) + " " + (rng.Below(2) ? "b" : "{*a*}");
    case 2:
      return "lsort " + std::string(rng.Below(2) ? "-decreasing " : "") +
             rng.Pick(Lists());
    case 3:
      return "lsort -integer {3 1 010 0x2 -5}";
    case 4:
      return "join " + rng.Pick(Lists()) + " {" +
             (rng.Below(2) ? "-" : ", ") + "}";
    case 5:
      return "split \"" + rng.Pick(Subjects()) + "\" { }";
    case 6:
      return "concat " + rng.Pick(Lists()) + " " + rng.Pick(Lists());
    case 7:
      return "string " + std::string(rng.Below(2) ? "tolower" : "toupper") +
             " \"" + rng.Pick(Subjects()) + "\"";
    case 8:
      return "string compare \"" + rng.Pick(Subjects()) + "\" \"" +
             rng.Pick(Subjects()) + "\"";
    default: {
      // Shimmer composition: list rep cached on a variable, then reused and
      // mutated through lappend/linsert while a copy is held elsewhere.
      std::string script = "set l " + rng.Pick(Lists()) + "\n";
      script += "set keep $l\n";
      script += "lappend l " + rng.Pick(IntLiterals()) + "\n";
      script += "list [llength $l] [llength $keep] [lindex $l end] [lindex $keep 0]";
      return script;
    }
  }
}

std::string GenErrorTrace(Rng& rng) {
  const std::vector<std::string> leaves = {
      "error boom",
      "expr {1 / 0}",
      "set q [expr {$v / 0}]",
      "lindex {a b} nosuch",
      "nosuchcommand 1 2",
      "string index abc bad",
  };
  std::string leaf = rng.Pick(leaves);
  switch (rng.Below(4)) {
    case 0: {  // nested procs, depth 2-3
      std::string script = "proc leaf {v} {" + leaf + "}\n";
      script += "proc mid {v} {leaf $v}\n";
      if (rng.Below(2)) {
        script += "proc top {} {mid 3}\ntop";
      } else {
        script += "mid 3";
      }
      return script;
    }
    case 1:  // failure inside a foreach body
      return "foreach v {1 2 3} {" + leaf + "}";
    case 2:  // failure inside a while body
      return "set v 0\nwhile {$v < 3} {incr v\n" + leaf + "}";
    default:  // caught then re-raised: errorInfo must reflect the re-raise
      return "proc leaf {v} {" + leaf + "}\ncatch {leaf 5} msg\nerror $msg";
  }
}

}  // namespace

std::vector<Case> GenerateCases(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Case> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Case c;
    switch (rng.Below(4)) {
      case 0:
        c.name = "gen-expr-" + std::to_string(i);
        c.script = GenExpr(rng);
        break;
      case 1:
        c.name = "gen-index-" + std::to_string(i);
        c.script = GenIndex(rng);
        break;
      case 2:
        c.name = "gen-liststring-" + std::to_string(i);
        c.script = GenListString(rng);
        break;
      default:
        c.name = "gen-errtrace-" + std::to_string(i);
        c.script = GenErrorTrace(rng);
        break;
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace oracle
