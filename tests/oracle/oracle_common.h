// Shared vocabulary of the differential oracle: the outcome of evaluating
// one spec-corpus script in some Tcl (wtcl or the reference tclsh), and the
// corpus case that carries a script plus its committed expectations.
//
// Completion codes use the classic catch numbering (0 ok, 1 error, 2 return,
// 3 break, 4 continue) so a wtcl Status and a reference-side `catch` result
// compare directly.
#ifndef TESTS_ORACLE_ORACLE_COMMON_H_
#define TESTS_ORACLE_ORACLE_COMMON_H_

#include <string>
#include <vector>

namespace oracle {

// What evaluating a script produced: completion code, result string (the
// error message when code == 1), the errorInfo trace (errors only), and
// everything the script wrote through puts/echo.
struct Outcome {
  int code = 0;
  std::string result;
  std::string error_info;
  std::string output;
};

// One spec-corpus case. `flags` is a whitespace-separated token list; the
// recognized token is "knowndiff": a documented wtcl deviation from the
// reference (e.g. 64-bit wrap where Tcl 8.6 promotes to bignum) that is
// pinned by embedded expectations but excluded from live differential runs.
struct Case {
  std::string name;        // corpus file stem, or generator-assigned
  std::string path;        // source file, empty for generated cases
  std::string script;
  std::string flags;
  Outcome expect;          // committed expectations (embedded mode golden)
  bool has_expect = false; // generated cases carry no expectations

  bool KnownDiff() const { return flags.find("knowndiff") != std::string::npos; }
};

}  // namespace oracle

#endif  // TESTS_ORACLE_ORACLE_COMMON_H_
