// Normalization and diffing of evaluation outcomes across Tcl
// implementations.
//
// Two comparison strengths:
//  - ExactDiff: byte-exact on every field. Used for wtcl-vs-committed
//    expectations (embedded mode) and wtcl-fresh-vs-cached runs, where both
//    sides are the same implementation.
//  - NormalizedDiff: used for wtcl vs the reference tclsh, where the two
//    implementations word some error messages differently and format their
//    errorInfo traces differently. Normalization maps both sides onto a
//    canonical form first:
//      * error messages: known equivalent wording families collapse to one
//        canonical spelling (e.g. Tcl 8.6's `invalid bareword "08" ...
//        (invalid octal number?)` and wtcl's `expected integer but got "08"`
//        both become `bad number "08"`); messages outside the table compare
//        verbatim, so unexpected wording still diverges.
//      * errorInfo: reduced to the error message plus the ordered list of
//        quoted culprit commands; connective lines (`while executing`,
//        `invoked from within`, `(procedure ...)`) and wtcl's `(line N,
//        level M)` suffixes are dropped, and command text is truncated to a
//        common length so the two implementations' different truncation
//        limits cannot diverge.
//      * results and captured output: byte-exact (the reference driver pins
//        tcl_precision to 6, which matches wtcl's %g double formatting).
#ifndef TESTS_ORACLE_NORMALIZE_H_
#define TESTS_ORACLE_NORMALIZE_H_

#include <string>
#include <vector>

#include "tests/oracle/oracle_common.h"

namespace oracle {

// Canonical form of an error message (identity for unrecognized wording).
std::string NormalizeError(const std::string& message);

// Canonical form of an errorInfo trace: normalized message, then one line
// per culprit command ("  cmd: <text>").
std::string NormalizeErrorInfo(const std::string& info);

// Field-by-field byte-exact comparison; returns human-readable divergence
// descriptions, empty when the outcomes match. `compare_error_info` lets
// callers skip trace comparison (generated cases have no committed trace).
std::vector<std::string> ExactDiff(const Outcome& got, const Outcome& want,
                                   bool compare_error_info = true);

// Cross-implementation comparison under normalization. errorInfo traces are
// compared only when both sides produced one (wtcl omits traces for pure
// parse errors; the message comparison still covers those).
std::vector<std::string> NormalizedDiff(const Outcome& wtcl,
                                        const Outcome& reference);

}  // namespace oracle

#endif  // TESTS_ORACLE_NORMALIZE_H_
