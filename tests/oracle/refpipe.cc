#include "tests/oracle/refpipe.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/select.h>
#include <sys/wait.h>
#include <unistd.h>

namespace oracle {

namespace {

// A hung reference (or a runaway generated script) must not hang the test
// run; corpus scripts finish in milliseconds.
constexpr int kReadTimeoutSeconds = 20;

bool OnPath(const std::string& name, std::string* resolved) {
  const char* path = std::getenv("PATH");
  if (path == nullptr) return false;
  std::string dirs = path;
  std::size_t start = 0;
  while (start <= dirs.size()) {
    std::size_t colon = dirs.find(':', start);
    std::string dir = dirs.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start);
    if (!dir.empty()) {
      std::string candidate = dir + "/" + name;
      if (access(candidate.c_str(), X_OK) == 0) {
        *resolved = candidate;
        return true;
      }
    }
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return false;
}

}  // namespace

std::string FindReferenceTclsh() {
  const char* env = std::getenv("WAFE_TCLSH");
  if (env != nullptr && env[0] != '\0') {
    return access(env, X_OK) == 0 ? env : "";
  }
  std::string resolved;
  if (OnPath("tclsh", &resolved)) return resolved;
  if (OnPath("tclsh8.6", &resolved)) return resolved;
  return "";
}

ReferenceTcl::ReferenceTcl(const std::string& tclsh_path,
                           const std::string& driver_path) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    error_ = "pipe() failed";
    return;
  }
  pid_t pid = fork();
  if (pid < 0) {
    error_ = "fork() failed";
    return;
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(tclsh_path.c_str(), tclsh_path.c_str(), driver_path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  pid_ = pid;
  to_child_ = to_child[1];
  from_child_ = from_child[0];
  signal(SIGPIPE, SIG_IGN);
}

ReferenceTcl::~ReferenceTcl() {
  if (pid_ > 0) {
    // Best-effort orderly shutdown before reaping.
    ssize_t ignored = write(to_child_, "EXIT\n", 5);
    (void)ignored;
  }
  Close();
  if (pid_ > 0) {
    int status = 0;
    if (waitpid(pid_, &status, WNOHANG) == 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, &status, 0);
    }
  }
}

void ReferenceTcl::Close() {
  if (to_child_ >= 0) close(to_child_);
  if (from_child_ >= 0) close(from_child_);
  to_child_ = -1;
  from_child_ = -1;
}

bool ReferenceTcl::ReadExact(std::size_t n, std::string* out) {
  while (buffer_.size() < n) {
    fd_set fds;
    FD_ZERO(&fds);
    FD_SET(from_child_, &fds);
    timeval tv = {kReadTimeoutSeconds, 0};
    int ready = select(from_child_ + 1, &fds, nullptr, nullptr, &tv);
    if (ready <= 0) {
      error_ = ready == 0 ? "timeout waiting for reference tclsh"
                          : "select() failed";
      return false;
    }
    char chunk[4096];
    ssize_t got = read(from_child_, chunk, sizeof(chunk));
    if (got <= 0) {
      error_ = "reference tclsh closed the pipe";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  out->assign(buffer_, 0, n);
  buffer_.erase(0, n);
  return true;
}

bool ReferenceTcl::ReadLine(std::string* line) {
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    std::string more;
    // Pull at least one more byte through the timeout machinery.
    if (!ReadExact(buffer_.size() + 1, &more)) return false;
    buffer_ = more + buffer_;
  }
}

bool ReferenceTcl::Eval(const std::string& script, Outcome* out) {
  if (pid_ <= 0) {
    if (error_.empty()) error_ = "reference tclsh not running";
    return false;
  }
  std::string frame =
      "EVAL " + std::to_string(script.size()) + "\n" + script + "\n";
  std::size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = write(to_child_, frame.data() + written, frame.size() - written);
    if (n <= 0) {
      error_ = "write to reference tclsh failed";
      pid_ = -1;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  auto read_sized = [&](const char* tag, std::string* value) {
    std::string line;
    if (!ReadLine(&line)) return false;
    std::string prefix = std::string(tag) + " ";
    if (line.rfind(prefix, 0) != 0) {
      error_ = "protocol error: expected " + prefix + "got: " + line;
      return false;
    }
    std::size_t n = static_cast<std::size_t>(
        std::strtoul(line.c_str() + prefix.size(), nullptr, 10));
    if (!ReadExact(n, value)) return false;
    std::string newline;
    return ReadExact(1, &newline);
  };
  std::string line;
  if (!ReadLine(&line)) return false;
  if (line.rfind("CODE ", 0) != 0) {
    error_ = "protocol error: expected CODE, got: " + line;
    return false;
  }
  out->code = std::atoi(line.c_str() + 5);
  if (!read_sized("RESULT", &out->result)) return false;
  if (!read_sized("INFO", &out->error_info)) return false;
  if (!read_sized("OUT", &out->output)) return false;
  if (!ReadLine(&line) || line != "DONE") {
    error_ = "protocol error: expected DONE";
    return false;
  }
  return true;
}

}  // namespace oracle
