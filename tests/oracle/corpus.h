// Spec-corpus file format: load, parse, and serialize oracle cases.
//
// A corpus file is line-oriented with `%%`-prefixed section headers:
//
//   # free-form comment lines before the first section
//   %% flags knowndiff            (optional)
//   %% script
//   lindex {a b c} end-1
//   %% code 0                     (optional; defaults to 0)
//   %% result
//   b
//   %% errorinfo                  (optional; meaningful with code 1)
//   ...
//   %% output                     (optional; puts/echo capture)
//   ...
//
// Section bodies run until the next `%%` header; the final newline of a body
// is not part of the value (use a trailing blank line to encode one).
#ifndef TESTS_ORACLE_CORPUS_H_
#define TESTS_ORACLE_CORPUS_H_

#include <string>
#include <vector>

#include "tests/oracle/oracle_common.h"

namespace oracle {

// Parses one corpus file's text. Returns false and fills *error on a
// malformed file (unknown section, missing script).
bool ParseCase(const std::string& text, Case* out, std::string* error);

// Serializes a case back to the file format (inverse of ParseCase).
std::string SerializeCase(const Case& c);

// Loads every *.test file under `dir` (sorted by name). Returns false and
// fills *error if the directory is unreadable or any file fails to parse.
bool LoadCorpusDir(const std::string& dir, std::vector<Case>* out,
                   std::string* error);

// Reads / writes one file. ReadFile returns false on I/O error.
bool ReadFile(const std::string& path, std::string* out);
bool WriteFile(const std::string& path, const std::string& text);

}  // namespace oracle

#endif  // TESTS_ORACLE_CORPUS_H_
