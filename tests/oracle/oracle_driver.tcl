# Reference-side driver for the wtcl differential oracle.
#
# Speaks a length-prefixed frame protocol on stdin/stdout:
#
#   runner -> driver:  EVAL <nbytes>\n<script bytes>\n     (or EXIT\n)
#   driver -> runner:  CODE <catch code>\n
#                      RESULT <nbytes>\n<bytes>\n
#                      INFO <nbytes>\n<bytes>\n
#                      OUT <nbytes>\n<bytes>\n
#                      DONE\n
#
# Each script evaluates inside a fresh child interp so cases cannot observe
# one another. tcl_precision is pinned to 6, which reproduces the classic %g
# double formatting wtcl implements (modern tclsh defaults to
# shortest-roundtrip formatting). puts/echo inside the child are captured
# into a buffer instead of reaching the protocol channel.
set ::tcl_precision 6

fconfigure stdin -translation binary -encoding binary
fconfigure stdout -translation binary -encoding binary

# Commands installed into every child interp before its case runs.
set childPrelude {
    set ::oracleOut ""
    rename puts ::oracleRealPuts
    proc puts {args} {
        set nonewline 0
        if {[lindex $args 0] eq "-nonewline"} {
            set nonewline 1
            set args [lrange $args 1 end]
        }
        if {[llength $args] == 2 &&
            ([lindex $args 0] eq "stdout" || [lindex $args 0] eq "stderr")} {
            set args [lrange $args 1 end]
        }
        if {[llength $args] != 1} {
            error "wrong # args: should be \"puts ?-nonewline? ?channel? string\""
        }
        append ::oracleOut [lindex $args 0]
        if {!$nonewline} {append ::oracleOut "\n"}
        return
    }
    # wtcl carries Wafe's `echo` builtin; mirror it so corpus scripts can
    # use either output command.
    proc echo {args} {
        append ::oracleOut [join $args " "] "\n"
        return
    }
}

proc emit {code result info out} {
    ::oracleRealPuts -nonewline stdout "CODE $code\n"
    ::oracleRealPuts -nonewline stdout "RESULT [string length $result]\n$result\n"
    ::oracleRealPuts -nonewline stdout "INFO [string length $info]\n$info\n"
    ::oracleRealPuts -nonewline stdout "OUT [string length $out]\n$out\n"
    ::oracleRealPuts -nonewline stdout "DONE\n"
    flush stdout
}

rename puts ::oracleRealPuts

while {[gets stdin line] >= 0} {
    set verb [lindex $line 0]
    if {$verb eq "EXIT"} break
    if {$verb ne "EVAL"} {
        ::oracleRealPuts stderr "oracle_driver: bad frame: $line"
        exit 2
    }
    set n [lindex $line 1]
    set script [read stdin $n]
    read stdin 1  ;# trailing newline of the frame
    interp create child
    child eval $::childPrelude
    child eval {set ::tcl_precision 6}
    set code [catch {child eval $script} result]
    set info ""
    if {$code == 1} {
        catch {set info [child eval {set ::errorInfo}]}
    }
    set out [child eval {set ::oracleOut}]
    interp delete child
    emit $code $result $info $out
}
