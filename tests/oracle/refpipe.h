// Reference-Tcl subprocess: spawns `tclsh oracle_driver.tcl` and evaluates
// scripts through the driver's length-prefixed pipe protocol.
#ifndef TESTS_ORACLE_REFPIPE_H_
#define TESTS_ORACLE_REFPIPE_H_

#include <string>

#include "tests/oracle/oracle_common.h"

namespace oracle {

// Locates a reference tclsh: $WAFE_TCLSH if set, else `tclsh` / `tclsh8.6`
// on PATH. Returns the resolved command (empty when none is found).
std::string FindReferenceTclsh();

class ReferenceTcl {
 public:
  // Spawns `tclsh_path driver_path`. Check ok() before use.
  ReferenceTcl(const std::string& tclsh_path, const std::string& driver_path);
  ~ReferenceTcl();

  ReferenceTcl(const ReferenceTcl&) = delete;
  ReferenceTcl& operator=(const ReferenceTcl&) = delete;

  bool ok() const { return pid_ > 0; }
  const std::string& error() const { return error_; }

  // Evaluates one script in a fresh child interp of the reference. Returns
  // false (and fills error()) on a protocol failure or timeout, after which
  // the driver is considered dead.
  bool Eval(const std::string& script, Outcome* out);

 private:
  bool ReadLine(std::string* line);
  bool ReadExact(std::size_t n, std::string* out);
  void Close();

  int pid_ = -1;
  int to_child_ = -1;
  int from_child_ = -1;
  std::string buffer_;  // read-ahead from the child
  std::string error_;
};

}  // namespace oracle

#endif  // TESTS_ORACLE_REFPIPE_H_
