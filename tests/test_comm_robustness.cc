// Robustness of the frontend<->backend channel: the bounded non-blocking
// send queue and its overflow policies, high-water callbacks, backend
// supervision (respawn with backoff), reliable child reaping, zero-byte and
// truncated mass transfers, over-long line edge cases, and the deterministic
// fault-injection seam (commFault / WAFE_COMM_FAULT).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace wafe {
namespace {

// --- In-process channel tests (AdoptBackend over pipes) -----------------------------

class CommChannelTest : public ::testing::Test {
 protected:
  CommChannelTest() {
    int to_wafe[2];
    int from_wafe[2];
    EXPECT_EQ(::pipe(to_wafe), 0);
    EXPECT_EQ(::pipe(from_wafe), 0);
    backend_write_ = to_wafe[1];
    backend_read_ = from_wafe[0];
    wafe_.set_backend_output(true);
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~CommChannelTest() override {
    ::close(backend_write_);
    ::close(backend_read_);
    wobs::SetMetricsEnabled(false);
  }

  void Pump(int iterations = 50) {
    for (int i = 0; i < iterations; ++i) {
      wafe_.app().RunOneIteration(false);
    }
  }

  void SendLines(const std::string& data) {
    ssize_t ignored = ::write(backend_write_, data.data(), data.size());
    (void)ignored;
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  std::string ReadFromWafe() {
    char buffer[8192];
    ssize_t n = ::read(backend_read_, buffer, sizeof(buffer));
    return n > 0 ? std::string(buffer, static_cast<std::size_t>(n)) : std::string();
  }

  std::string Var(const std::string& name) {
    std::string value;
    return wafe_.interp().GetVar(name, &value) ? value : std::string("<unset>");
  }

  Wafe wafe_;
  int backend_write_ = -1;
  int backend_read_ = -1;
};

// Satellite: a zero-byte mass transfer must set the variable empty and run
// the completion immediately, with nothing left armed.
TEST_F(CommChannelTest, ZeroByteMassTransferCompletesImmediately) {
  wtcl::Result r = wafe_.Eval("setCommunicationVariable C 0 {set massDone 1}");
  ASSERT_EQ(r.code, wtcl::Status::kOk) << r.value;
  EXPECT_EQ(Var("C"), "");
  EXPECT_EQ(Var("massDone"), "1");
  EXPECT_FALSE(wafe_.frontend().mass_transfer_active());
}

// A mass channel that ends mid-transfer completes with the partial payload
// instead of leaving the completion script armed forever.
TEST_F(CommChannelTest, TruncatedMassTransferCompletesWithPartialData) {
  ASSERT_EQ(wafe_.Eval("commFault massEofAfter=500").code, wtcl::Status::kOk);
  wtcl::Result fd_result = wafe_.Eval("getChannel");
  ASSERT_EQ(fd_result.code, wtcl::Status::kOk);
  int mass_fd = std::atoi(fd_result.value.c_str());
  ASSERT_GE(mass_fd, 0);
  ASSERT_EQ(wafe_.Eval("setCommunicationVariable C 1000 {set truncDone 1}").code,
            wtcl::Status::kOk);
  std::string payload(500, 'p');
  ASSERT_EQ(::write(mass_fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  Pump();
  EXPECT_EQ(Var("truncDone"), "1");
  EXPECT_EQ(Var("C").size(), 500u);
  EXPECT_FALSE(wafe_.frontend().mass_transfer_active());
}

// Closing the backend mid-mass-transfer must complete the transfer as
// truncated — partial payload delivered, completion script run, both mass
// fds released — instead of leaving the variable armed forever (and the
// transfer fd open) after the channel is gone.
TEST_F(CommChannelTest, CloseBackendMidMassTransferCompletesTruncated) {
  wobs::SetMetricsEnabled(true);
  wtcl::Result fd_result = wafe_.Eval("getChannel");
  ASSERT_EQ(fd_result.code, wtcl::Status::kOk);
  int mass_fd = std::atoi(fd_result.value.c_str());
  ASSERT_GE(mass_fd, 0);
  ASSERT_EQ(wafe_.Eval("setCommunicationVariable C 1000 {set massDone 1}").code,
            wtcl::Status::kOk);
  // 400 bytes consumed through the event loop, 100 more still sitting in the
  // pipe: CloseBackend must drain those before releasing the fd.
  std::string consumed(400, 'a');
  ASSERT_EQ(::write(mass_fd, consumed.data(), consumed.size()),
            static_cast<ssize_t>(consumed.size()));
  Pump();
  EXPECT_TRUE(wafe_.frontend().mass_transfer_active());
  std::string pending(100, 'b');
  ASSERT_EQ(::write(mass_fd, pending.data(), pending.size()),
            static_cast<ssize_t>(pending.size()));

  std::uint64_t truncated_before = 0;
  wobs::Registry::Instance().GetMetric("comm.mass.truncated", &truncated_before);
  wafe_.frontend().CloseBackend();
  EXPECT_FALSE(wafe_.frontend().mass_transfer_active());
  EXPECT_EQ(Var("massDone"), "1");
  EXPECT_EQ(Var("C").size(), 500u);
  EXPECT_LT(wafe_.frontend().mass_channel_read_fd(), 0);
  std::uint64_t truncated_after = 0;
  wobs::Registry::Instance().GetMetric("comm.mass.truncated", &truncated_after);
  EXPECT_EQ(truncated_after, truncated_before + 1);
}

// Satellite: a line split across many small reads is still detected as
// over-long, dropped, and the following line survives.
TEST_F(CommChannelTest, OverlongLineSplitAcrossManyReadsIsDropped) {
  std::string flood = "%set evil ";
  flood.append(70 * 1024, 'z');
  for (std::size_t off = 0; off < flood.size(); off += 1024) {
    SendLines(flood.substr(off, 1024));
  }
  SendLines("\n%set survivor 1\n");
  EXPECT_EQ(wafe_.frontend().overlong_lines(), 1u);
  EXPECT_EQ(Var("evil"), "<unset>");
  EXPECT_EQ(Var("survivor"), "1");
}

// A line of exactly the maximum length is legal and evaluates.
TEST_F(CommChannelTest, LineExactlyAtLimitEvaluates) {
  const std::size_t limit = wafe_.options().max_line_length;
  std::string prefix = "%set exact ";
  std::string line = prefix + std::string(limit - prefix.size(), 'x');
  ASSERT_EQ(line.size(), limit);
  for (std::size_t off = 0; off < line.size(); off += 4096) {
    SendLines(line.substr(off, 4096));
  }
  SendLines("\n");
  EXPECT_EQ(wafe_.frontend().overlong_lines(), 0u);
  EXPECT_EQ(Var("exact").size(), limit - prefix.size());
}

// Command lines and passthrough lines interleaved with an over-long line:
// only the over-long one is lost, order is preserved.
TEST_F(CommChannelTest, OverlongInterleavedWithCommandsAndPassthrough) {
  std::vector<std::string> passed;
  wafe_.set_passthrough([&passed](const std::string& line) { passed.push_back(line); });
  std::string overlong(70 * 1024, 'o');
  SendLines("%set first 1\nplain one\n");
  // Chunked: a single 70 KB write would fill the pipe before the frontend
  // ever gets to read.
  for (std::size_t off = 0; off < overlong.size(); off += 4096) {
    SendLines(overlong.substr(off, 4096));
  }
  SendLines("\nplain two\n%set second 2\n");
  EXPECT_EQ(wafe_.frontend().overlong_lines(), 1u);
  EXPECT_EQ(Var("first"), "1");
  EXPECT_EQ(Var("second"), "2");
  ASSERT_EQ(passed.size(), 2u);
  EXPECT_EQ(passed[0], "plain one");
  EXPECT_EQ(passed[1], "plain two");
}

// Short-write fault: the line reaches the backend complete even when every
// write() is capped to a few bytes.
TEST_F(CommChannelTest, ShortWritesStillDeliverWholeLines) {
  ASSERT_EQ(wafe_.Eval("commFault shortWrites=3").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("short-write-survivor"));
  Pump();
  EXPECT_EQ(ReadFromWafe(), "short-write-survivor\n");
  EXPECT_EQ(wafe_.frontend().send_queue_bytes(), 0u);
}

// EINTR storm: interrupted writes are retried transparently.
TEST_F(CommChannelTest, EintrStormIsRetried) {
  ASSERT_EQ(wafe_.Eval("commFault eintr=5").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("eintr-survivor"));
  Pump();
  EXPECT_EQ(ReadFromWafe(), "eintr-survivor\n");
}

// EAGAIN keeps lines queued; once the storm passes the write-ready source
// drains them in order.
TEST_F(CommChannelTest, EagainQueuesAndDrainsInOrder) {
  ASSERT_EQ(wafe_.Eval("commFault eagain=100000").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("one"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("two"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("three"));
  EXPECT_EQ(wafe_.frontend().send_queue_lines(), 3u);
  ASSERT_EQ(wafe_.Eval("commFault clear").code, wtcl::Status::kOk);
  Pump();
  EXPECT_EQ(wafe_.frontend().send_queue_lines(), 0u);
  EXPECT_EQ(ReadFromWafe(), "one\ntwo\nthree\n");
}

// dropOldest: over the limit the oldest whole lines go first; the newest
// line is admitted; nothing is ever half-sent.
TEST_F(CommChannelTest, DropOldestPolicyDropsFromTheFront) {
  ASSERT_EQ(wafe_.Eval("backend overflowPolicy dropOldest").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend queueLimit 40").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("commFault eagain=100000").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("line-one"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("line-two"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("line-three"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("line-four"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("line-fifth!!"));
  EXPECT_GE(wafe_.frontend().lines_dropped(), 2u);
  EXPECT_LE(wafe_.frontend().send_queue_bytes(), 40u);
  ASSERT_EQ(wafe_.Eval("commFault clear").code, wtcl::Status::kOk);
  Pump();
  std::string delivered = ReadFromWafe();
  EXPECT_EQ(delivered.find("line-one"), std::string::npos);
  EXPECT_NE(delivered.find("line-fifth!!"), std::string::npos);
}

// fail: the sender is told synchronously, and sendToApplication surfaces it
// as a Tcl error.
TEST_F(CommChannelTest, FailPolicyRejectsAndSendToApplicationErrors) {
  ASSERT_EQ(wafe_.Eval("backend overflowPolicy fail").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend queueLimit 16").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("commFault eagain=100000").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("fits-in-the-queue"));
  EXPECT_FALSE(wafe_.frontend().SendToBackend("rejected"));
  EXPECT_GE(wafe_.frontend().lines_dropped(), 1u);
  wtcl::Result r = wafe_.Eval("sendToApplication {also rejected}");
  EXPECT_EQ(r.code, wtcl::Status::kError);
}

// block: past the deadline the line is dropped instead of wedging the loop.
TEST_F(CommChannelTest, BlockPolicyGivesUpAtDeadline) {
  ASSERT_EQ(wafe_.Eval("backend overflowPolicy block").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend queueLimit 16").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend sendDeadline 50").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("commFault eagain=100000000").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("occupies-the-queue"));
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(wafe_.frontend().SendToBackend("deadline-dropped"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 40);
  EXPECT_LT(elapsed.count(), 2000);
}

// The high-water callback fires once at the crossing, with the depth
// exposed in backendQueueBytes.
TEST_F(CommChannelTest, HighWaterCallbackFiresOnce) {
  ASSERT_EQ(wafe_.Eval("set hwCount 0").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("backend highWater 20 {set hw $backendQueueBytes; "
                       "set hwCount [expr $hwCount + 1]}")
                .code,
            wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("commFault eagain=100000").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("aaaaaaaaaa"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("bbbbbbbbbb"));
  EXPECT_TRUE(wafe_.frontend().SendToBackend("cccccccccc"));
  EXPECT_EQ(Var("hwCount"), "1");
  EXPECT_NE(Var("hw"), "<unset>");
  ASSERT_EQ(wafe_.Eval("commFault clear").code, wtcl::Status::kOk);
  Pump();
}

// Injected mid-line hangup: the channel notices EPIPE, records the reason,
// and (unsupervised) ends the session exactly like a real backend death.
TEST_F(CommChannelTest, InjectedHangupEndsUnsupervisedSession) {
  ASSERT_EQ(wafe_.Eval("commFault hangupAfter=5").code, wtcl::Status::kOk);
  wafe_.frontend().SendToBackend("0123456789-this-line-dies-midway");
  Pump();
  EXPECT_FALSE(wafe_.frontend().backend_alive());
  EXPECT_TRUE(wafe_.quit_requested());
  EXPECT_EQ(Var("backendExitReason"), "write-epipe");
}

// The channel instruments feed the metrics registry.
TEST_F(CommChannelTest, QueueMetricsAreRecorded) {
  ASSERT_EQ(wafe_.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("metrics reset").code, wtcl::Status::kOk);
  EXPECT_TRUE(wafe_.frontend().SendToBackend("metered"));
  Pump();
  wtcl::Result r = wafe_.Eval("metrics get comm.queue.enqueued");
  ASSERT_EQ(r.code, wtcl::Status::kOk);
  EXPECT_EQ(r.value, "1");
  EXPECT_EQ(wafe_.Eval("metrics get comm.queue.depth").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe_.Eval("metrics get comm.restarts").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe_.Eval("metrics disable").code, wtcl::Status::kOk);
}

// The Tcl surface: status report, validation errors.
TEST_F(CommChannelTest, BackendAndCommFaultCommandSurface) {
  ASSERT_EQ(wafe_.Eval("backend overflowPolicy dropOldest").code, wtcl::Status::kOk);
  wtcl::Result status = wafe_.Eval("backend status");
  ASSERT_EQ(status.code, wtcl::Status::kOk);
  EXPECT_NE(status.value.find("policy dropOldest"), std::string::npos);
  EXPECT_NE(status.value.find("supervise 0"), std::string::npos);

  EXPECT_EQ(wafe_.Eval("backend bogus").code, wtcl::Status::kError);
  EXPECT_EQ(wafe_.Eval("backend supervise sideways").code, wtcl::Status::kError);
  EXPECT_EQ(wafe_.Eval("backend queueLimit notanumber").code, wtcl::Status::kError);
  EXPECT_EQ(wafe_.Eval("commFault flipBits=1").code, wtcl::Status::kError);

  ASSERT_EQ(wafe_.Eval("commFault shortWrites=9,eintr=2").code, wtcl::Status::kOk);
  wtcl::Result faults = wafe_.Eval("commFault status");
  ASSERT_EQ(faults.code, wtcl::Status::kOk);
  EXPECT_NE(faults.value.find("shortWrites 9"), std::string::npos);
  EXPECT_NE(faults.value.find("eintr 2"), std::string::npos);
  ASSERT_EQ(wafe_.Eval("commFault clear").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe_.frontend().faults().short_write_max, 0u);
}

// The WAFE_COMM_FAULT environment seam applies at construction.
TEST(CommFaultEnvTest, EnvironmentSpecIsApplied) {
  ::setenv("WAFE_COMM_FAULT", "eintr=4,hangupAfter=123", 1);
  Wafe wafe;
  ::unsetenv("WAFE_COMM_FAULT");
  EXPECT_EQ(wafe.frontend().faults().eintr_storm, 4);
  EXPECT_EQ(wafe.frontend().faults().hangup_after_bytes, 123);
}

// --- Forked-backend tests ------------------------------------------------------------

class CommBackendTest : public ::testing::Test {
 protected:
  ~CommBackendTest() override { wobs::SetMetricsEnabled(false); }

  bool PumpUntil(Wafe& wafe, const std::function<bool()>& done, int timeout_ms = 5000) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      wafe.app().RunOneIteration(false);
      ::usleep(1000);
    }
    return true;
  }

  bool Spawn(Wafe& wafe, const std::string& mode,
             const std::vector<std::string>& extra = {}) {
    std::string error;
    wafe.set_backend_output(true);
    std::vector<std::string> args{mode};
    args.insert(args.end(), extra.begin(), extra.end());
    bool ok = wafe.frontend().SpawnBackend(WAFE_TEST_BACKEND, args, &error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

// Acceptance: a backend that stops reading stdin for five seconds must not
// block Xt event dispatch — writes queue, injected events keep processing,
// and every queued line is delivered once the backend wakes up.
TEST_F(CommBackendTest, SlowReaderDoesNotBlockEventDispatch) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "slowreader", {"5000"}));
  // Wait for the ready line, proving the stall has started.
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.frontend().lines_received() >= 1; }));

  // Flood until the kernel buffer is full and the in-process queue backs up.
  const std::string filler(1024, 'f');
  std::size_t flooded = 0;
  while (wafe.frontend().send_queue_bytes() < 100 * 1024 && flooded < 5000) {
    ASSERT_TRUE(wafe.frontend().SendToBackend(filler));
    ++flooded;
  }
  ASSERT_GT(wafe.frontend().send_queue_bytes(), 0u) << "backend never stalled";

  // With the channel clogged, the UI must stay alive: build a button and
  // click it through the xsim event pipeline.
  ASSERT_EQ(wafe.Eval("set clicks 0").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("command poker topLevel callback "
                      "{set clicks [expr $clicks + 1]}")
                .code,
            wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("realize").code, wtcl::Status::kOk);
  xtk::Widget* poker = wafe.app().FindWidget("poker");
  ASSERT_NE(poker, nullptr);
  xsim::Point p = wafe.app().display().RootPosition(poker->window());
  auto ui_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    wafe.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    wafe.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    wafe.app().ProcessPending();
    wafe.app().RunOneIteration(false);
  }
  auto ui_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - ui_start);
  std::string clicks;
  ASSERT_TRUE(wafe.interp().GetVar("clicks", &clicks));
  EXPECT_EQ(clicks, "5");
  // Dispatch happened during the stall (the queue is still backed up) and
  // was not serialized behind the blocked channel.
  EXPECT_GT(wafe.frontend().send_queue_bytes(), 0u);
  EXPECT_LT(ui_elapsed.count(), 2000);

  // Tell the backend where the flood ends; once it wakes, everything drains
  // and the session winds down normally.
  ASSERT_TRUE(wafe.frontend().SendToBackend("done"));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }, 15000));
  EXPECT_EQ(wafe.frontend().send_queue_bytes(), 0u);
  EXPECT_EQ(wafe.frontend().lines_dropped(), 0u);
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

// Acceptance: under `backend supervise on` a killed backend is respawned
// with backoff, comm.restarts reflects each attempt, and the exit hook runs
// per death; past maxRestarts the session ends.
TEST_F(CommBackendTest, SupervisedBackendRespawnsWithBackoff) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend supervise on").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend maxRestarts 2").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backend backoff 30 200").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("set deaths 0").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("backendExitCommand {set deaths [expr $deaths + 1]}").code,
            wtcl::Status::kOk);
  ASSERT_TRUE(Spawn(wafe, "drain", {"0"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.frontend().lines_received() >= 1; }));

  // First death: supervisor respawns.
  int first_pid = wafe.frontend().backend_pid();
  ASSERT_GT(first_pid, 0);
  ASSERT_EQ(::kill(first_pid, SIGKILL), 0);
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    return wafe.frontend().restart_count() == 1 && wafe.frontend().backend_alive();
  }));
  EXPECT_NE(wafe.frontend().backend_pid(), first_pid);
  std::string value;
  ASSERT_TRUE(wafe.interp().GetVar("deaths", &value));
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(wafe.interp().GetVar("backendExitStatus", &value));
  EXPECT_EQ(value, "-1");  // killed by signal
  wtcl::Result restarts = wafe.Eval("metrics get comm.restarts");
  ASSERT_EQ(restarts.code, wtcl::Status::kOk);
  EXPECT_EQ(restarts.value, "1");

  // Second death: one more respawn allowed.
  int second_pid = wafe.frontend().backend_pid();
  ASSERT_EQ(::kill(second_pid, SIGKILL), 0);
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    return wafe.frontend().restart_count() == 2 && wafe.frontend().backend_alive();
  }));
  restarts = wafe.Eval("metrics get comm.restarts");
  EXPECT_EQ(restarts.value, "2");
  EXPECT_FALSE(wafe.quit_requested());

  // Third death: the restart budget is spent; the session ends.
  ASSERT_EQ(::kill(wafe.frontend().backend_pid(), SIGKILL), 0);
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }));
  EXPECT_FALSE(wafe.frontend().backend_alive());
  EXPECT_EQ(wafe.frontend().restart_count(), 2);
  ASSERT_TRUE(wafe.interp().GetVar("deaths", &value));
  EXPECT_EQ(value, "3");
}

// Lines sent while the restart timer is pending are queued and delivered to
// the replacement backend.
TEST_F(CommBackendTest, QueuedLinesReachTheRespawnedBackend) {
  Wafe wafe;
  wafe.frontend().set_supervise(true);
  wafe.frontend().set_max_restarts(3);
  wafe.frontend().set_backoff(30, 200);
  ASSERT_TRUE(Spawn(wafe, "drain", {"0"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.frontend().lines_received() >= 1; }));
  ASSERT_EQ(::kill(wafe.frontend().backend_pid(), SIGKILL), 0);
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.frontend().restart_pending(); }));
  EXPECT_FALSE(wafe.frontend().backend_alive());
  // The channel is down but supervised: the send is accepted and queued.
  EXPECT_TRUE(wafe.frontend().SendToBackend("carried-across-the-restart"));
  EXPECT_GE(wafe.frontend().send_queue_lines(), 1u);
  ASSERT_TRUE(PumpUntil(wafe, [&] {
    return wafe.frontend().backend_alive() && wafe.frontend().send_queue_bytes() == 0;
  }));
  EXPECT_EQ(wafe.frontend().lines_dropped(), 0u);
  wafe.frontend().CloseBackend();
}

// Satellite: CloseBackend must reap reliably — even a child that lingers
// after stdin EOF is waited for, and its exit status recorded.
TEST_F(CommBackendTest, CloseBackendReapsLingeringChild) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "linger", {"200"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.frontend().lines_received() >= 1; }));
  int pid = wafe.frontend().backend_pid();
  ASSERT_GT(pid, 0);
  wafe.frontend().CloseBackend();
  // The child was reaped: status recorded, no zombie left behind.
  EXPECT_TRUE(wafe.frontend().exit_recorded());
  EXPECT_EQ(wafe.frontend().last_exit_status(), 7);
  EXPECT_EQ(wafe.frontend().backend_pid(), -1);
  errno = 0;
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  EXPECT_EQ(wafe.frontend().WaitBackend(), 7);
}

// A dribbling mass-channel writer still completes the transfer (the reader
// is event-driven, not one-shot).
TEST_F(CommBackendTest, DribbledMassTransferCompletes) {
  Wafe wafe;
  ASSERT_TRUE(Spawn(wafe, "massdribble", {"60000", "4096", "100"}));
  ASSERT_TRUE(PumpUntil(wafe, [&] { return wafe.quit_requested(); }, 10000));
  std::string value;
  ASSERT_TRUE(wafe.interp().GetVar("C", &value));
  EXPECT_EQ(value.size(), 60000u);
  EXPECT_EQ(wafe.frontend().WaitBackend(), 0);
}

}  // namespace
}  // namespace wafe
