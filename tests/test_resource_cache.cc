// Correctness of the resource-pipeline fast path: the memoizing converter
// cache (values identical before/after invalidation, hit/miss accounting),
// the global quark table (stable and thread-safe), the compiled-translations
// memo (fires identically to a fresh parse), and the Xrm quark query path
// (answers equal to the string path).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/xsim/event.h"
#include "src/xt/converter.h"
#include "src/xt/quark.h"
#include "src/xt/translations.h"
#include "src/xt/xrm.h"

namespace {

std::uint64_t Metric(const std::string& name) {
  std::uint64_t value = 0;
  wobs::Registry::Instance().GetMetric(name, &value);
  return value;
}

// Metrics must be enabled for the counter assertions; restore on exit.
class ResourceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = wobs::MetricsEnabled();
    wobs::SetMetricsEnabled(true);
  }
  void TearDown() override { wobs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

// --- Converter cache ---------------------------------------------------------------

TEST_F(ResourceCacheTest, CachedConversionEqualsFreshConversion) {
  xtk::ConverterRegistry reg;
  std::string error;
  xtk::ResourceValue first;
  xtk::ResourceValue second;
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kPixel, "red", nullptr, &first, &error));
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kPixel, "red", nullptr, &second, &error));
  EXPECT_EQ(std::get<xsim::Pixel>(first), std::get<xsim::Pixel>(second));

  // Invalidation must not change the answer, only recompute it.
  reg.InvalidateCache();
  EXPECT_EQ(reg.cache_size(), 0u);
  xtk::ResourceValue third;
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kPixel, "red", nullptr, &third, &error));
  EXPECT_EQ(std::get<xsim::Pixel>(first), std::get<xsim::Pixel>(third));
}

TEST_F(ResourceCacheTest, RepeatConversionHitsCache) {
  xtk::ConverterRegistry reg;
  std::string error;
  xtk::ResourceValue out;
  const std::uint64_t hits0 = Metric("xt.converter.cache.hits");
  const std::uint64_t misses0 = Metric("xt.converter.cache.misses");
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kInt, "42", nullptr, &out, &error));
  EXPECT_EQ(Metric("xt.converter.cache.misses"), misses0 + 1);
  EXPECT_EQ(reg.cache_size(), 1u);
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kInt, "42", nullptr, &out, &error));
  EXPECT_EQ(Metric("xt.converter.cache.hits"), hits0 + 1);
  EXPECT_EQ(std::get<long>(out), 42);
  EXPECT_EQ(reg.cache_size(), 1u);
}

TEST_F(ResourceCacheTest, PerTypeInvalidationDropsOnlyThatType) {
  xtk::ConverterRegistry reg;
  std::string error;
  xtk::ResourceValue out;
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kInt, "7", nullptr, &out, &error));
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kBoolean, "true", nullptr, &out, &error));
  ASSERT_EQ(reg.cache_size(), 2u);
  reg.InvalidateCache(xtk::ResourceType::kInt);
  EXPECT_EQ(reg.cache_size(), 1u);
  // The boolean survives and still answers correctly.
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kBoolean, "true", nullptr, &out, &error));
  EXPECT_TRUE(std::get<bool>(out));
}

TEST_F(ResourceCacheTest, FailedConversionIsNotCached) {
  xtk::ConverterRegistry reg;
  std::string error;
  xtk::ResourceValue out;
  EXPECT_FALSE(reg.Convert(xtk::ResourceType::kInt, "bogus", nullptr, &out, &error));
  EXPECT_EQ(reg.cache_size(), 0u);
}

TEST_F(ResourceCacheTest, DisabledCacheStillConvertsCorrectly) {
  xtk::ConverterRegistry reg;
  reg.set_cache_enabled(false);
  std::string error;
  xtk::ResourceValue out;
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kPixel, "blue", nullptr, &out, &error));
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kPixel, "blue", nullptr, &out, &error));
  EXPECT_EQ(reg.cache_size(), 0u);
  EXPECT_EQ(std::get<xsim::Pixel>(out), xsim::MakePixel(0, 0, 255));
}

TEST_F(ResourceCacheTest, ReregisteringAConverterDropsItsEntries) {
  xtk::ConverterRegistry reg;
  std::string error;
  xtk::ResourceValue out;
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kInt, "1", nullptr, &out, &error));
  ASSERT_EQ(reg.cache_size(), 1u);
  reg.Register(
      xtk::ResourceType::kInt,
      [](const std::string&, xtk::Widget*, xtk::ResourceValue* value, std::string*) {
        *value = 99L;
        return true;
      },
      /*cacheable=*/true);
  // The stale "1" -> 1 entry must be gone; the replacement answers.
  ASSERT_TRUE(reg.Convert(xtk::ResourceType::kInt, "1", nullptr, &out, &error));
  EXPECT_EQ(std::get<long>(out), 99);
}

TEST_F(ResourceCacheTest, ConverterCacheFlushCommandReportsDrops) {
  wafe::Wafe wafe;
  wafe.Eval("label l topLevel background red foreground blue width 30");
  ASSERT_GT(wafe.app().converters().cache_size(), 0u);
  std::string dropped = wafe.Eval("converterCacheFlush").value;
  EXPECT_GT(std::stoul(dropped), 0u);
  EXPECT_EQ(wafe.app().converters().cache_size(), 0u);
  // The UI still resolves resources correctly afterwards.
  wafe.Eval("label m topLevel background red");
  EXPECT_EQ(wafe.Eval("gV m background").value, "#ff0000");
}

// --- Quark table -------------------------------------------------------------------

TEST_F(ResourceCacheTest, QuarkInterningIsStableAcrossManyNames) {
  std::vector<xtk::Quark> first;
  first.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    first.push_back(xtk::Intern("stableResource" + std::to_string(i)));
  }
  // Re-interning the same names returns the same quarks, in any order.
  for (int i = 9999; i >= 0; --i) {
    EXPECT_EQ(xtk::Intern("stableResource" + std::to_string(i)),
              first[static_cast<std::size_t>(i)]);
  }
  // And each quark resolves back to the name it was interned from.
  EXPECT_EQ(xtk::QuarkName(first[1234]), "stableResource1234");
  EXPECT_NE(first[0], first[9999]);
}

TEST_F(ResourceCacheTest, QuarkEdgeCases) {
  EXPECT_EQ(xtk::Intern(""), xtk::kNullQuark);
  EXPECT_EQ(xtk::QuarkName(xtk::kNullQuark), "");
  EXPECT_EQ(xtk::FindQuark("neverInternedName-xyzzy"), xtk::kNullQuark);
  xtk::Quark q = xtk::Intern("background");
  EXPECT_EQ(xtk::FindQuark("background"), q);
  // Quarks are case-sensitive: the class name is a different quark.
  EXPECT_NE(xtk::Intern("Background"), q);
  EXPECT_EQ(xtk::QuarkName(0xffffffffu), "");
}

TEST_F(ResourceCacheTest, ConcurrentInterningYieldsOneQuarkPerName) {
  // Eight threads intern the same 200 names concurrently; every thread must
  // observe identical quark assignments (thread-safety under TSan/ASan).
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<xtk::Quark>> seen(kThreads,
                                            std::vector<xtk::Quark>(kNames, 0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int i = 0; i < kNames; ++i) {
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            xtk::Intern("contended" + std::to_string(i));
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  // Distinct names got distinct quarks.
  for (int i = 1; i < kNames; ++i) {
    EXPECT_NE(seen[0][static_cast<std::size_t>(i)], seen[0][0]);
  }
}

// --- Compiled translations -----------------------------------------------------------

TEST_F(ResourceCacheTest, CompiledTranslationsMatchFreshParse) {
  const std::string source =
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: reset()\n"
      "Shift<Btn1Down>: set() notify()\n"
      "<Key>Return: newline()";
  std::string error;
  auto fresh = xtk::ParseTranslations(source, &error);
  ASSERT_NE(fresh, nullptr) << error;
  auto compiled = xtk::GetCompiledTranslations(source, &error);
  ASSERT_NE(compiled, nullptr) << error;

  // A/B: both tables pick the same production for a spread of events.
  std::vector<xsim::Event> events;
  xsim::Event enter;
  enter.type = xsim::EventType::kEnterNotify;
  events.push_back(enter);
  xsim::Event leave;
  leave.type = xsim::EventType::kLeaveNotify;
  events.push_back(leave);
  xsim::Event shift_press;
  shift_press.type = xsim::EventType::kButtonPress;
  shift_press.button = 1;
  shift_press.state = xsim::kShiftMask;
  events.push_back(shift_press);
  xsim::Event plain_press = shift_press;
  plain_press.state = 0;
  events.push_back(plain_press);
  xsim::Event key;
  key.type = xsim::EventType::kKeyPress;
  key.keysym = xsim::kKeyReturn;
  events.push_back(key);

  for (const xsim::Event& event : events) {
    const xtk::Production* a = fresh->Match(event);
    const xtk::Production* b = compiled->Match(event);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->source, b->source);
      ASSERT_EQ(a->actions.size(), b->actions.size());
      for (std::size_t i = 0; i < a->actions.size(); ++i) {
        EXPECT_EQ(a->actions[i].name, b->actions[i].name);
      }
    }
  }
}

TEST_F(ResourceCacheTest, CompiledTranslationsAreSharedAndCounted) {
  const std::string source = "<Btn2Down>: set()\n<Btn2Up>: notify() unset()";
  std::string error;
  const std::uint64_t hits0 = Metric("xt.translations.compile.hits");
  auto first = xtk::GetCompiledTranslations(source, &error);
  ASSERT_NE(first, nullptr) << error;
  auto second = xtk::GetCompiledTranslations(source, &error);
  // Same source text -> the same immutable table, and a recorded hit.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GE(Metric("xt.translations.compile.hits"), hits0 + 1);
}

TEST_F(ResourceCacheTest, CompiledTranslationFailuresAreNotCached) {
  const std::string bad = "<NoSuchEvent: broken(";
  std::string error;
  const std::size_t before = xtk::CompiledTranslationCount();
  EXPECT_EQ(xtk::GetCompiledTranslations(bad, &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(xtk::CompiledTranslationCount(), before);
}

TEST_F(ResourceCacheTest, WidgetsOfOneClassShareTheCompiledDefaultTable) {
  wafe::Wafe wafe;
  wafe.Eval("command c1 topLevel");
  wafe.Eval("command c2 topLevel");
  xtk::Widget* c1 = wafe.app().FindWidget("c1");
  xtk::Widget* c2 = wafe.app().FindWidget("c2");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->GetTranslations().get(), c2->GetTranslations().get());
}

// --- Xrm quark query path ------------------------------------------------------------

TEST_F(ResourceCacheTest, QuarkQueryAnswersEqualStringQuery) {
  xtk::ResourceDatabase db;
  db.MergeLine("*foreground: blue");
  db.MergeLine("wafe.form.button.foreground: red");
  db.MergeLine("wafe*Command.background: gray");
  db.MergeLine("*Text*font: fixed");

  using Path = std::vector<std::pair<std::string, std::string>>;
  struct Case {
    Path path;
    std::pair<std::string, std::string> resource;
  };
  const std::vector<Case> cases = {
      {{{"wafe", "Wafe"}, {"form", "Form"}, {"button", "Command"}},
       {"foreground", "Foreground"}},
      {{{"wafe", "Wafe"}, {"form", "Form"}, {"button", "Command"}},
       {"background", "Background"}},
      {{{"wafe", "Wafe"}, {"editor", "Text"}}, {"font", "Font"}},
      {{{"wafe", "Wafe"}, {"other", "Label"}}, {"font", "Font"}},
  };
  for (const Case& c : cases) {
    std::vector<xtk::ResourceDatabase::QuarkLevel> qpath;
    for (const auto& [name, cls] : c.path) {
      qpath.emplace_back(xtk::Intern(name), xtk::Intern(cls));
    }
    xtk::ResourceDatabase::QuarkLevel qres{xtk::Intern(c.resource.first),
                                           xtk::Intern(c.resource.second)};
    std::optional<std::string> via_string = db.Query(c.path, c.resource);
    std::optional<std::string> via_quark = db.Query(qpath, qres);
    EXPECT_EQ(via_string, via_quark);
  }
}

}  // namespace
