// Property-style sweeps over cross-module invariants: converter round
// trips, Tcl quoting under adversarial strings, translation-table
// re-parsing, resource precedence, and percent-code laws.
#include <gtest/gtest.h>

#include "src/core/percent.h"
#include "src/core/wafe.h"
#include "src/xt/converter.h"

namespace {

// Deterministic pseudo-random byte strings (no std::random in tests keeps
// failures reproducible from the seed printed in the test name).
std::string PseudoRandomString(unsigned seed, std::size_t length) {
  std::string out;
  unsigned state = seed * 2654435761u + 1;
  const char alphabet[] =
      "abc {}[]$\"\\;#\n\t ABC123*?%()<>-_=+.,/xyz";
  for (std::size_t i = 0; i < length; ++i) {
    state = state * 1664525u + 1013904223u;
    out.push_back(alphabet[(state >> 16) % (sizeof(alphabet) - 1)]);
  }
  return out;
}

// --- Tcl list quoting under adversarial content -----------------------------------

class TclQuoteFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(TclQuoteFuzz, MergeSplitRoundTrip) {
  unsigned seed = GetParam();
  std::vector<std::string> elements;
  for (unsigned i = 0; i < 1 + seed % 5; ++i) {
    elements.push_back(PseudoRandomString(seed * 7 + i, (seed + i * 13) % 40));
  }
  std::string merged = wtcl::MergeList(elements);
  std::vector<std::string> recovered;
  ASSERT_TRUE(wtcl::SplitList(merged, &recovered)) << merged;
  EXPECT_EQ(recovered, elements) << merged;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TclQuoteFuzz, ::testing::Range(1u, 40u));

// Variable round trip: set x <random>; $x recovers it.
class TclVarFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(TclVarFuzz, SetGetIdentity) {
  wtcl::Interp interp;
  std::string value = PseudoRandomString(GetParam(), 30);
  interp.SetVar("x", value);
  std::string out;
  ASSERT_TRUE(interp.GetVar("x", &out));
  EXPECT_EQ(out, value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TclVarFuzz, ::testing::Range(100u, 120u));

// --- Converter round trips ------------------------------------------------------------

struct ConverterCase {
  xtk::ResourceType type;
  const char* input;
  const char* formatted;  // expected Format(Convert(input))
};

class ConverterRoundTrip : public ::testing::TestWithParam<ConverterCase> {};

TEST_P(ConverterRoundTrip, FormatOfConvert) {
  xtk::ConverterRegistry registry;
  xtk::ResourceValue value;
  std::string error;
  ASSERT_TRUE(registry.Convert(GetParam().type, GetParam().input, nullptr, &value, &error))
      << error;
  EXPECT_EQ(registry.Format(GetParam().type, value), GetParam().formatted);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConverterRoundTrip,
    ::testing::Values(
        ConverterCase{xtk::ResourceType::kInt, "42", "42"},
        ConverterCase{xtk::ResourceType::kInt, "-7", "-7"},
        ConverterCase{xtk::ResourceType::kDimension, "120", "120"},
        ConverterCase{xtk::ResourceType::kPosition, "-3", "-3"},
        ConverterCase{xtk::ResourceType::kBoolean, "true", "True"},
        ConverterCase{xtk::ResourceType::kBoolean, "ON", "True"},
        ConverterCase{xtk::ResourceType::kBoolean, "0", "False"},
        ConverterCase{xtk::ResourceType::kString, "any text", "any text"},
        ConverterCase{xtk::ResourceType::kPixel, "red", "#ff0000"},
        ConverterCase{xtk::ResourceType::kPixel, "#123456", "#123456"},
        ConverterCase{xtk::ResourceType::kPixel, "tomato", "#ff6347"},
        ConverterCase{xtk::ResourceType::kFloat, "0.5", "0.5"},
        ConverterCase{xtk::ResourceType::kStringList, "a,b,c", "a,b,c"},
        ConverterCase{xtk::ResourceType::kPixmap, "None", "None"}));

TEST(ConverterErrors, RejectionsAreClean) {
  xtk::ConverterRegistry registry;
  xtk::ResourceValue value;
  std::string error;
  EXPECT_FALSE(registry.Convert(xtk::ResourceType::kInt, "abc", nullptr, &value, &error));
  EXPECT_FALSE(
      registry.Convert(xtk::ResourceType::kDimension, "-1", nullptr, &value, &error));
  EXPECT_FALSE(
      registry.Convert(xtk::ResourceType::kBoolean, "maybe", nullptr, &value, &error));
  EXPECT_FALSE(
      registry.Convert(xtk::ResourceType::kPixel, "nocolor", nullptr, &value, &error));
  EXPECT_FALSE(registry.Convert(xtk::ResourceType::kFont, "*nothing-matches-this*", nullptr,
                                &value, &error));
}

// --- Translation tables: parse -> source -> reparse is stable ----------------------------

class TranslationReparse : public ::testing::TestWithParam<const char*> {};

TEST_P(TranslationReparse, SourceReparsesToSameShape) {
  std::string error;
  xtk::TranslationsPtr first = xtk::ParseTranslations(GetParam(), &error);
  ASSERT_NE(first, nullptr) << error;
  xtk::TranslationsPtr second = xtk::ParseTranslations(first->source, &error);
  ASSERT_NE(second, nullptr) << error;
  ASSERT_EQ(first->productions.size(), second->productions.size());
  for (std::size_t i = 0; i < first->productions.size(); ++i) {
    EXPECT_EQ(first->productions[i].matcher.type, second->productions[i].matcher.type);
    EXPECT_EQ(first->productions[i].matcher.keysym, second->productions[i].matcher.keysym);
    ASSERT_EQ(first->productions[i].actions.size(), second->productions[i].actions.size());
    for (std::size_t a = 0; a < first->productions[i].actions.size(); ++a) {
      EXPECT_EQ(first->productions[i].actions[a].name,
                second->productions[i].actions[a].name);
      EXPECT_EQ(first->productions[i].actions[a].params,
                second->productions[i].actions[a].params);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tables, TranslationReparse,
    ::testing::Values("<Key>Return: newline()",
                      "<KeyPress>: exec(echo %k %a %s)",
                      "Shift<Btn1Down>: set() notify()",
                      "<EnterWindow>: highlight()\n<LeaveWindow>: reset()",
                      "~Ctrl<Key>a: plain()",
                      "<Btn3Up>: doit(one, two, three)"));

// --- Percent codes ------------------------------------------------------------------------

TEST(PercentLaws, DoublePercentAlwaysCollapses) {
  wafe::Wafe app;
  std::string error;
  xtk::Widget* w = app.app().CreateWidget("w", "Label", app.top_level(), {}, true, &error);
  ASSERT_NE(w, nullptr);
  xsim::Event event;
  event.type = xsim::EventType::kKeyPress;
  EXPECT_EQ(wafe::SubstituteEventCodes("100%% done", *w, event), "100% done");
  xtk::CallData data;
  EXPECT_EQ(wafe::SubstituteCallbackCodes("100%% done", *w, data), "100% done");
}

TEST(PercentLaws, SubstitutionIsIdempotentWithoutCodes) {
  wafe::Wafe app;
  std::string error;
  xtk::Widget* w = app.app().CreateWidget("w", "Label", app.top_level(), {}, true, &error);
  ASSERT_NE(w, nullptr);
  xsim::Event event;
  event.type = xsim::EventType::kButtonPress;
  for (unsigned seed = 1; seed < 10; ++seed) {
    std::string text = PseudoRandomString(seed, 50);
    // Strip percent characters so no codes are present.
    std::string clean;
    for (char c : text) {
      if (c != '%') {
        clean.push_back(c);
      }
    }
    EXPECT_EQ(wafe::SubstituteEventCodes(clean, *w, event), clean);
  }
}

// --- Resource precedence (paper §Setting and Retrieving Resource Values) ------------------

TEST(ResourcePrecedence, PaperOrderHolds) {
  // resource db < mergeResources (same db, later entry) < creation args <
  // setValues.
  wafe::Wafe app;
  app.app().resource_db().MergeLine("*prec.label: from-db");
  app.Eval("label prec topLevel");
  EXPECT_EQ(app.app().FindWidget("prec")->GetString("label"), "from-db");
  app.Eval("destroyWidget prec");

  app.Eval("mergeResources *prec.label from-merge");
  app.Eval("label prec topLevel");
  EXPECT_EQ(app.app().FindWidget("prec")->GetString("label"), "from-merge");
  app.Eval("destroyWidget prec");

  app.Eval("label prec topLevel label from-args");
  EXPECT_EQ(app.app().FindWidget("prec")->GetString("label"), "from-args");

  app.Eval("sV prec label from-setvalues");
  EXPECT_EQ(app.app().FindWidget("prec")->GetString("label"), "from-setvalues");
}

// --- Expr/string cross-checks ---------------------------------------------------------------

class ExprStringEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExprStringEquivalence, FormatAndExprAgree) {
  wtcl::Interp interp;
  int n = GetParam();
  wtcl::Result via_format = interp.Eval("format %d " + std::to_string(n));
  wtcl::Result via_expr = interp.Eval("expr " + std::to_string(n) + " + 0");
  ASSERT_TRUE(via_format.ok());
  ASSERT_TRUE(via_expr.ok());
  EXPECT_EQ(via_format.value, via_expr.value);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExprStringEquivalence,
                         ::testing::Values(-1000000, -42, -1, 0, 1, 99, 65535, 2147483647));

}  // namespace
