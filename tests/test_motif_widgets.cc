// Motif widget behavior beyond the compound-string tests: RowColumn layout,
// ToggleButton, Separator, CascadeButton menus, and Command history.
#include <gtest/gtest.h>

#include "src/core/wafe.h"
#include "src/xm/motif.h"

namespace {

class MotifWidgetTest : public ::testing::Test {
 protected:
  MotifWidgetTest() {
    wafe::Options options;
    options.widget_set = wafe::WidgetSet::kMotif;
    options.app_name = "mofe";
    options.app_class = "Mofe";
    wafe_ = std::make_unique<wafe::Wafe>(options);
  }
  std::string Eval(const std::string& script) {
    wtcl::Result r = wafe_->Eval(script);
    EXPECT_TRUE(r.ok()) << script << ": " << r.value;
    return r.value;
  }
  void Click(const std::string& name) {
    xtk::Widget* w = wafe_->app().FindWidget(name);
    ASSERT_NE(w, nullptr);
    xsim::Point p = wafe_->app().display().RootPosition(w->window());
    wafe_->app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    wafe_->app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    wafe_->app().ProcessPending();
  }
  std::unique_ptr<wafe::Wafe> wafe_;
};

TEST_F(MotifWidgetTest, RowColumnVerticalLayout) {
  Eval("mRowColumn rc topLevel");
  Eval("mPushButton b1 rc");
  Eval("mPushButton b2 rc");
  Eval("realize");
  xtk::Widget* b1 = wafe_->app().FindWidget("b1");
  xtk::Widget* b2 = wafe_->app().FindWidget("b2");
  EXPECT_EQ(b1->x(), b2->x());
  EXPECT_GT(b2->y(), b1->y());
}

TEST_F(MotifWidgetTest, RowColumnHorizontalLayout) {
  Eval("mRowColumn rc topLevel orientation horizontal");
  Eval("mPushButton b1 rc");
  Eval("mPushButton b2 rc");
  Eval("realize");
  xtk::Widget* b1 = wafe_->app().FindWidget("b1");
  xtk::Widget* b2 = wafe_->app().FindWidget("b2");
  EXPECT_EQ(b1->y(), b2->y());
  EXPECT_GT(b2->x(), b1->x());
}

TEST_F(MotifWidgetTest, PushButtonFullCallbackSequence) {
  Eval("mPushButton b topLevel");
  Eval("sV b armCallback {lappend seq arm}");
  Eval("sV b activateCallback {lappend seq activate}");
  Eval("sV b disarmCallback {lappend seq disarm}");
  Eval("realize");
  Click("b");
  EXPECT_EQ(Eval("set seq"), "arm activate disarm");
}

TEST_F(MotifWidgetTest, ToggleButtonValueChanged) {
  Eval("mToggleButton t topLevel");
  Eval("sV t valueChangedCallback {set state %s}");
  Eval("realize");
  Click("t");
  EXPECT_EQ(Eval("set state"), "1");
  EXPECT_EQ(Eval("mToggleButtonGetState t"), "1");
  Click("t");
  EXPECT_EQ(Eval("set state"), "0");
  Eval("mToggleButtonSetState t true true");
  EXPECT_EQ(Eval("set state"), "1");
}

TEST_F(MotifWidgetTest, CascadeButtonPopsSubMenu) {
  Eval("overrideShell menu topLevel");
  Eval("mRowColumn menuRC menu");
  Eval("mPushButton item menuRC");
  Eval("mCascadeButton cb topLevel subMenuId menu");
  Eval("sV cb cascadingCallback {set cascaded 1}");
  Eval("realize");
  xtk::Widget* cb = wafe_->app().FindWidget("cb");
  xsim::Point p = wafe_->app().display().RootPosition(cb->window());
  wafe_->app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  wafe_->app().ProcessPending();
  EXPECT_EQ(Eval("set cascaded"), "1");
  EXPECT_TRUE(wafe_->app().IsPoppedUp(wafe_->app().FindWidget("menu")));
}

TEST_F(MotifWidgetTest, SeparatorRendersLine) {
  Eval("mRowColumn rc topLevel");
  Eval("mPushButton above rc");
  Eval("mSeparator sep rc");
  Eval("mPushButton below rc");
  Eval("realize");
  xtk::Widget* sep = wafe_->app().FindWidget("sep");
  bool line_drawn = false;
  for (const auto& op : wafe_->app().display().draw_ops()) {
    if (op.kind == xsim::Display::DrawOp::Kind::kLine && op.window == sep->window()) {
      line_drawn = true;
    }
  }
  EXPECT_TRUE(line_drawn);
}

TEST_F(MotifWidgetTest, CommandHistory) {
  Eval("mCommand cmd topLevel");
  Eval("realize");
  Eval("mCommandError cmd {error: no such file}");
  Eval("mCommandError cmd {second message}");
  xtk::Widget* cmd = wafe_->app().FindWidget("cmd");
  EXPECT_EQ(cmd->GetLong("historyItemCount"), 2);
  std::vector<std::string> history = cmd->GetStringList("historyItems");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], "error: no such file");
}

TEST_F(MotifWidgetTest, LabelRecomputeSizeOnSetValues) {
  Eval("mLabel l topLevel labelString {short}");
  Eval("realize");
  xsim::Dimension before = wafe_->app().FindWidget("l")->width();
  Eval("sV l labelString {a considerably longer label string}");
  EXPECT_GT(wafe_->app().FindWidget("l")->width(), before);
}

TEST_F(MotifWidgetTest, PrimitiveResourcesPresent) {
  Eval("mPushButton b topLevel");
  // XmPrimitive contributes shadow/highlight resources to all Motif widgets.
  EXPECT_EQ(Eval("gV b shadowThickness"), "2");
  Eval("sV b shadowThickness 4");
  EXPECT_EQ(Eval("gV b shadowThickness"), "4");
  std::string count = Eval("getResourceList b names");
  EXPECT_GT(std::stoi(count), 35);
}

TEST_F(MotifWidgetTest, UpdateDisplayProcessesEvents) {
  Eval("mLabel l topLevel");
  Eval("realize");
  wafe_->app().display().InjectMotion(5, 5);
  Eval("mUpdateDisplay l");
  EXPECT_FALSE(wafe_->app().display().Pending());
}

}  // namespace
