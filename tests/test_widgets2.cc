// Second widget batch: XmString internals, extension widgets (Plotter,
// Graph), menus end to end, Dialog, Grip, containers in their other
// orientations, popup positioning callbacks.
#include <gtest/gtest.h>

#include "src/core/wafe.h"
#include "src/ext/plotter.h"
#include "src/xm/xmstring.h"

namespace {

// --- XmString / FontList units ----------------------------------------------------

TEST(XmStringUnit, FontListParses) {
  auto fonts = xmw::ParseFontList("*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft");
  ASSERT_TRUE(fonts.has_value());
  ASSERT_EQ(fonts->size(), 2u);
  EXPECT_EQ((*fonts)[0].tag, "ft");
  EXPECT_EQ((*fonts)[1].tag, "bft");
  EXPECT_TRUE((*fonts)[1].font->bold);
}

TEST(XmStringUnit, FontListDefaultTag) {
  auto fonts = xmw::ParseFontList("fixed");
  ASSERT_TRUE(fonts.has_value());
  EXPECT_EQ((*fonts)[0].tag, xmw::kDefaultFontTag);
}

TEST(XmStringUnit, FontListRejectsUnknownFont) {
  EXPECT_FALSE(xmw::ParseFontList("*no-such-font-at-all*=x").has_value());
  EXPECT_FALSE(xmw::ParseFontList("").has_value());
}

TEST(XmStringUnit, PaperMarkupSegments) {
  auto fonts = xmw::ParseFontList("*lucida-medium-r*14*=ft,*lucida-bold-r*14*=bft");
  ASSERT_TRUE(fonts.has_value());
  std::string error;
  auto parsed = xmw::ParseXmString("I'm\\bft bold\\ft and\\rl strange", &*fonts, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->segments.size(), 4u);
  EXPECT_EQ(parsed->segments[0].text, "I'm");
  EXPECT_EQ(parsed->segments[1].text, " bold");
  EXPECT_EQ(parsed->segments[1].tag, "bft");
  EXPECT_EQ(parsed->segments[2].text, " and");
  EXPECT_EQ(parsed->segments[2].tag, "ft");
  EXPECT_TRUE(parsed->segments[3].right_to_left);
  EXPECT_EQ(parsed->segments[3].text, " strange");
}

TEST(XmStringUnit, PlainTextReversesRtlSegments) {
  std::string error;
  auto parsed = xmw::ParseXmString("ab\\rlcd", nullptr, &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->PlainText(), "abdc");
}

TEST(XmStringUnit, EscapedBackslash) {
  std::string error;
  auto parsed = xmw::ParseXmString("a\\\\b", nullptr, &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->PlainText(), "a\\b");
}

TEST(XmStringUnit, DanglingBackslashRejected) {
  std::string error;
  EXPECT_FALSE(xmw::ParseXmString("oops\\", nullptr, &error).has_value());
  EXPECT_NE(error.find("dangling"), std::string::npos);
}

TEST(XmStringUnit, UnknownTagRejectedWithFontList) {
  auto fonts = xmw::ParseFontList("fixed=ft");
  std::string error;
  EXPECT_FALSE(xmw::ParseXmString("x\\nosuch y", &*fonts, &error).has_value());
}

TEST(XmStringUnit, TagPrefixConsumesRestAsText) {
  // "\bft!" switches to tag bft; "!" is literal text.
  auto fonts = xmw::ParseFontList("fixed=b,6x13=bft");
  std::string error;
  auto parsed = xmw::ParseXmString("\\bftX", &*fonts, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->segments.size(), 1u);
  EXPECT_EQ(parsed->segments[0].tag, "bft");  // longest tag wins over "b"
  EXPECT_EQ(parsed->segments[0].text, "X");
}

TEST(XmStringUnit, WidthUsesPerSegmentFonts) {
  auto fonts = xmw::ParseFontList("*helvetica-medium-r*-8-*=small,*helvetica-medium-r*-24-*=big");
  ASSERT_TRUE(fonts.has_value());
  std::string error;
  auto small = xmw::ParseXmString("\\small abcd", &*fonts, &error);
  auto big = xmw::ParseXmString("\\big abcd", &*fonts, &error);
  ASSERT_TRUE(small && big);
  EXPECT_LT(small->Width(*fonts), big->Width(*fonts));
}

// --- Extension widgets ------------------------------------------------------------------

class ExtTest : public ::testing::Test {
 protected:
  ExtTest() {
    app_.Eval("realize");
  }
  wafe::Wafe app_;
};

TEST_F(ExtTest, PlotterDataRoundTrip) {
  app_.Eval("barGraph bars topLevel width 100 height 50");
  app_.Eval("plotterSetData bars {1 2 3 4.5}");
  EXPECT_EQ(app_.Eval("plotterGetData bars").value, "1 2 3 4.5");
  app_.Eval("plotterAddSample bars 9");
  EXPECT_EQ(app_.Eval("plotterGetData bars").value, "1 2 3 4.5 9");
}

TEST_F(ExtTest, BarGraphDrawsBars) {
  app_.Eval("barGraph bars topLevel width 100 height 50");
  app_.Eval("realize");
  app_.app().display().ClearDrawOps();
  app_.Eval("plotterSetData bars {10 20 30}");
  bool filled = false;
  for (const auto& op : app_.app().display().draw_ops()) {
    if (op.kind == xsim::Display::DrawOp::Kind::kFillRect) {
      filled = true;
    }
  }
  EXPECT_TRUE(filled);
}

TEST_F(ExtTest, GraphLayoutLayersFollowEdges) {
  app_.Eval("graph g topLevel");
  app_.Eval("graphAddEdge g root mid");
  app_.Eval("graphAddEdge g mid leaf");
  app_.Eval("graphAddEdge g root leaf2");
  EXPECT_EQ(app_.Eval("graphNodes g").value, "root mid leaf leaf2");
  std::string layout = app_.Eval("graphLayout g").value;
  // Cells per node, insertion order: root layer 0; mid layer 1; leaf layer
  // 2; leaf2 layer 1.
  EXPECT_EQ(layout, "{0 0} {1 0} {2 0} {1 1}");
}

TEST_F(ExtTest, GraphToleratesCycles) {
  app_.Eval("graph g topLevel");
  app_.Eval("graphAddEdge g a b");
  app_.Eval("graphAddEdge g b a");  // cycle
  std::string layout = app_.Eval("graphLayout g").value;
  EXPECT_FALSE(layout.empty());  // layout terminates
  app_.Eval("graphClear g");
  EXPECT_EQ(app_.Eval("graphNodes g").value, "");
}

// --- Menus end to end --------------------------------------------------------------------

class MenuTest : public ::testing::Test {
 protected:
  void Click(const std::string& name) {
    xtk::Widget* w = app_.app().FindWidget(name);
    ASSERT_NE(w, nullptr);
    xsim::Point p = app_.app().display().RootPosition(w->window());
    app_.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    app_.app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    app_.app().ProcessPending();
  }
  wafe::Wafe app_;
};

TEST_F(MenuTest, FullMenuInteraction) {
  app_.Eval("simpleMenu menu topLevel");
  app_.Eval("smeBSB open menu label Open callback {set chosen open}");
  app_.Eval("smeLine sep menu");
  app_.Eval("smeBSB close menu label Close callback {set chosen close}");
  app_.Eval("menuButton mb topLevel menuName menu label File");
  app_.Eval("realize");
  // Press the menu button: the menu pops up under it with a grab.
  xtk::Widget* mb = app_.app().FindWidget("mb");
  xsim::Point p = app_.app().display().RootPosition(mb->window());
  app_.app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
  app_.app().ProcessPending();
  xtk::Widget* menu = app_.app().FindWidget("menu");
  ASSERT_TRUE(app_.app().IsPoppedUp(menu));
  // Release over the "close" entry: callback fires and the menu pops down.
  xtk::Widget* close = app_.app().FindWidget("close");
  xsim::Point cp = app_.app().display().RootPosition(close->window());
  app_.app().display().UngrabPointer();  // release the button-grab redirection
  app_.app().display().InjectButtonRelease(cp.x + 2, cp.y + 2, 1);
  app_.app().ProcessPending();
  EXPECT_EQ(app_.Eval("set chosen").value, "close");
  EXPECT_FALSE(app_.app().IsPoppedUp(menu));
}

TEST_F(MenuTest, DialogCreatesChildren) {
  app_.Eval("dialog dlg topLevel label {Are you sure?} value {initial}");
  app_.Eval("realize");
  xtk::Widget* label = app_.app().FindWidget("dlg.label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->GetString("label"), "Are you sure?");
  xtk::Widget* value = app_.app().FindWidget("dlg.value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->GetString("string"), "initial");
}

TEST_F(MenuTest, GripCallbackFires) {
  app_.Eval("grip g topLevel callback {set gripped 1}");
  app_.Eval("realize");
  xtk::Widget* g = app_.app().FindWidget("g");
  xsim::Point p = app_.app().display().RootPosition(g->window());
  app_.app().display().InjectButtonPress(p.x + 1, p.y + 1, 1);
  app_.app().ProcessPending();
  EXPECT_EQ(app_.Eval("set gripped").value, "1");
}

TEST_F(MenuTest, BoxVerticalOrientation) {
  app_.Eval("box b topLevel orientation vertical");
  app_.Eval("label one b width 40 height 20");
  app_.Eval("label two b width 40 height 20");
  app_.Eval("realize");
  xtk::Widget* one = app_.app().FindWidget("one");
  xtk::Widget* two = app_.app().FindWidget("two");
  EXPECT_EQ(one->x(), two->x());
  EXPECT_GT(two->y(), one->y());
}

TEST_F(MenuTest, PanedHorizontalOrientation) {
  app_.Eval("paned p topLevel orientation horizontal");
  app_.Eval("label one p width 40 height 20");
  app_.Eval("label two p width 50 height 20");
  app_.Eval("realize");
  xtk::Widget* two = app_.app().FindWidget("two");
  EXPECT_GE(two->x(), 40);
  EXPECT_EQ(two->y(), 0);
}

TEST_F(MenuTest, PositionCursorCallbackMovesShell) {
  app_.Eval("transientShell popup topLevel");
  app_.Eval("label inside popup");
  app_.Eval("command b topLevel width 60 height 20");
  app_.Eval("callback b callback positionCursor popup");
  app_.Eval("realize");
  app_.app().display().InjectMotion(77, 66);
  app_.app().ProcessPending();
  Click("b");
  xtk::Widget* popup = app_.app().FindWidget("popup");
  EXPECT_EQ(popup->x(), app_.app().display().PointerPosition().x);
  EXPECT_EQ(popup->y(), app_.app().display().PointerPosition().y);
}

TEST_F(MenuTest, ShellTitleResource) {
  app_.Eval("sV topLevel title {My Application}");
  EXPECT_EQ(app_.Eval("gV topLevel title").value, "My Application");
}

TEST_F(MenuTest, AcceleratorsResourceHoldsTranslations) {
  app_.Eval("label l topLevel");
  app_.Eval("sV l accelerators {<Key>Return: exec(set accel 1)}");
  std::string out = app_.Eval("gV l accelerators").value;
  EXPECT_NE(out.find("Return"), std::string::npos);
}

}  // namespace
