// Fuzz-ish regression suite for the %-prefix line protocol: a deterministic
// pseudo-random stream of protocol and pass-through lines is fed to the
// frontend in chunks split at arbitrary byte boundaries. Whatever the split
// points — mid-prefix, mid-line, between the '\r' and '\n' of a CRLF pair —
// the frontend must evaluate every protocol line exactly once and pass
// every other line through verbatim, in order, without ever desyncing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <random>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/wafe.h"

namespace {

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int to_wafe[2];
    ASSERT_EQ(::pipe(to_wafe), 0);
    int from_wafe[2];
    ASSERT_EQ(::pipe(from_wafe), 0);
    write_fd_ = to_wafe[1];
    sink_fd_ = from_wafe[0];
    wafe_.set_passthrough([this](const std::string& line) {
      passed_through_.push_back(line);
    });
    wafe_.frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  void TearDown() override {
    ::close(write_fd_);
    ::close(sink_fd_);
  }

  void Pump() {
    while (wafe_.app().RunOneIteration(false)) {
    }
  }

  // Writes `stream` in chunks whose sizes come from `rng`, pumping the app
  // between chunks so read boundaries land at the split points.
  void FeedInChunks(const std::string& stream, std::mt19937& rng,
                    std::size_t max_chunk) {
    std::uniform_int_distribution<std::size_t> chunk_size(1, max_chunk);
    std::size_t offset = 0;
    while (offset < stream.size()) {
      std::size_t n = std::min(chunk_size(rng), stream.size() - offset);
      ASSERT_EQ(::write(write_fd_, stream.data() + offset, n),
                static_cast<ssize_t>(n));
      offset += n;
      Pump();
    }
    Pump();
  }

  wafe::Wafe wafe_;
  std::vector<std::string> passed_through_;
  int write_fd_ = -1;
  int sink_fd_ = -1;
};

TEST_F(ProtocolFuzzTest, RandomSplitPointsNeverDesyncTheStream) {
  std::mt19937 rng(20260805);  // fixed seed: reproducible failures
  std::uniform_int_distribution<int> kind(0, 5);
  std::string stream;
  std::vector<std::string> expected_passthrough;
  int protocol_lines = 0;
  for (int i = 0; i < 400; ++i) {
    switch (kind(rng)) {
      case 0: {  // protocol line: evaluated by the frontend
        stream += "%set fuzz" + std::to_string(i) + " value" + std::to_string(i) + "\n";
        ++protocol_lines;
        break;
      }
      case 1: {  // pass-through with an embedded % mid-line
        std::string line = "progress 50% of item " + std::to_string(i);
        stream += line + "\n";
        expected_passthrough.push_back(line);
        break;
      }
      case 2: {  // empty line: passes through as an empty string
        stream += "\n";
        expected_passthrough.push_back("");
        break;
      }
      case 3: {  // CRLF backend
        std::string line = "crlf line " + std::to_string(i);
        stream += line + "\r\n";
        expected_passthrough.push_back(line);
        break;
      }
      case 4: {  // a lone % (protocol line with an empty script)
        stream += "%\n";
        ++protocol_lines;
        break;
      }
      default: {  // plain pass-through
        std::string line = "output line " + std::to_string(i);
        stream += line + "\n";
        expected_passthrough.push_back(line);
        break;
      }
    }
  }
  FeedInChunks(stream, rng, 17);  // tiny chunks: many mid-line boundaries
  EXPECT_EQ(passed_through_, expected_passthrough);
  EXPECT_EQ(wafe_.frontend().lines_received(),
            expected_passthrough.size() + static_cast<std::size_t>(protocol_lines));
  // Spot-check that protocol lines were really evaluated.
  std::string value;
  for (int i = 0; i < 400; ++i) {
    if (wafe_.interp().GetVar("fuzz" + std::to_string(i), &value)) {
      EXPECT_EQ(value, "value" + std::to_string(i));
    }
  }
}

TEST_F(ProtocolFuzzTest, SingleByteWritesDeliverEveryLine) {
  std::string stream;
  for (int i = 0; i < 30; ++i) {
    stream += "%set byteVar" + std::to_string(i) + " " + std::to_string(i * i) + "\n";
  }
  std::mt19937 rng(1);
  FeedInChunks(stream, rng, 1);  // every read boundary possible
  std::string value;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(wafe_.interp().GetVar("byteVar" + std::to_string(i), &value));
    EXPECT_EQ(value, std::to_string(i * i));
  }
  EXPECT_TRUE(passed_through_.empty());
}

TEST_F(ProtocolFuzzTest, OverlongLineIsDroppedWithoutDesync) {
  // A line far past the 64KB default limit, split across many reads, then a
  // normal protocol line and a pass-through line: both must still work. The
  // overhang must exceed two maximum chunks so the buffer is over the limit
  // while the line is still incomplete (the guard fires between reads).
  std::string overlong(wafe_.options().max_line_length + 9000, 'x');
  std::string stream = overlong + "\n%set after ok\nclean line\n";
  std::mt19937 rng(2);
  FeedInChunks(stream, rng, 4096);
  EXPECT_EQ(wafe_.frontend().overlong_lines(), 1u);
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("after", &value));
  EXPECT_EQ(value, "ok");
  EXPECT_EQ(passed_through_, std::vector<std::string>{"clean line"});
}

TEST_F(ProtocolFuzzTest, BackendDeathMidDrainDoesNotReplayHandledLines) {
  // The backend writes a burst and dies before reading its stdin: the %echo
  // line makes the frontend write back into the dead pipe (EPIPE), which
  // tears the backend down *re-entrantly, mid-drain*. Lines already handled
  // must not be evaluated again, and the lines after the failing write must
  // still be processed one by one.
  wafe_.set_backend_output(true);
  ::close(sink_fd_);  // nobody will ever read what wafe sends back
  sink_fd_ = -1;
  std::string stream =
      "%set first 1\n%echo boom\nplain line\n%set second 2\n";
  ASSERT_EQ(::write(write_fd_, stream.data(), stream.size()),
            static_cast<ssize_t>(stream.size()));
  Pump();
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("first", &value));
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(wafe_.interp().GetVar("second", &value));
  EXPECT_EQ(value, "2");
  EXPECT_EQ(passed_through_, std::vector<std::string>{"plain line"});
}

TEST_F(ProtocolFuzzTest, PrefixSplitFromRestOfLineStillEvaluates) {
  // The '%' arrives in its own read() long before the rest of the line.
  ASSERT_EQ(::write(write_fd_, "%", 1), 1);
  Pump();
  std::string rest = "set split done\n";
  ASSERT_EQ(::write(write_fd_, rest.data(), rest.size()),
            static_cast<ssize_t>(rest.size()));
  Pump();
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("split", &value));
  EXPECT_EQ(value, "done");
}

TEST_F(ProtocolFuzzTest, ErrorInProtocolLineDoesNotPoisonFollowingLines) {
  std::string stream = "%this-command-does-not-exist\n%set recovered yes\nstill here\n";
  std::mt19937 rng(3);
  FeedInChunks(stream, rng, 5);
  std::string value;
  ASSERT_TRUE(wafe_.interp().GetVar("recovered", &value));
  EXPECT_EQ(value, "yes");
  EXPECT_EQ(passed_through_, std::vector<std::string>{"still here"});
}

}  // namespace
