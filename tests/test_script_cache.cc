// The compile-once Tcl layer: scripts and expressions parse once into
// cached IR, and the cache must be invisible except in the metrics — same
// results, same error traces, same guard trips, with `tcl.script.cache.*` /
// `tcl.expr.cache.*` telling the performance story and `scriptCacheFlush`
// providing the manual invalidation hatch.
#include <gtest/gtest.h>

#include <string>

#include "helpers/ui_harness.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/tcl/interp.h"

namespace wafe {
namespace {

class ScriptCacheTest : public ::testing::Test {
 protected:
  ~ScriptCacheTest() override { wobs::SetMetricsEnabled(false); }

  void EnableMetrics(Wafe& wafe) {
    ASSERT_EQ(wafe.Eval("metrics enable").code, wtcl::Status::kOk);
    ASSERT_EQ(wafe.Eval("metrics reset").code, wtcl::Status::kOk);
  }

  // Reads the registry directly: going through `metrics get` would itself
  // be an Eval and perturb the very counters under test.
  std::uint64_t Metric(Wafe&, const std::string& name) {
    std::uint64_t value = 0;
    EXPECT_TRUE(wobs::Registry::Instance().GetMetric(name, &value)) << name;
    return value;
  }
};

// Re-evaluating the same script is a cache hit, not a reparse.
TEST_F(ScriptCacheTest, RepeatedEvalHitsScriptCache) {
  Wafe wafe;
  EnableMetrics(wafe);
  ASSERT_EQ(wafe.Eval("set x 1\nset y 2").code, wtcl::Status::kOk);
  std::uint64_t misses = Metric(wafe, "tcl.script.cache.misses");
  EXPECT_GT(misses, 0u);
  ASSERT_EQ(wafe.Eval("set x 1\nset y 2").code, wtcl::Status::kOk);
  EXPECT_GT(Metric(wafe, "tcl.script.cache.hits"), 0u);
  // The second evaluation added no misses for the top-level script.
  EXPECT_EQ(Metric(wafe, "tcl.script.cache.misses"), misses);
}

// A loop body compiles once; the loop condition's expr AST compiles once
// into a handle the loop reuses directly, so iterations generate no expr
// compiles (and no cache traffic) at all.
TEST_F(ScriptCacheTest, LoopBodyAndConditionCompileOnce) {
  Wafe wafe;
  EnableMetrics(wafe);
  ASSERT_EQ(wafe.Eval("set i 0\nwhile {$i < 100} {incr i}").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("set i").value, "100");
  // One compile for the condition, and no per-iteration lookups.
  EXPECT_LE(Metric(wafe, "tcl.expr.cache.misses"), 2u);
  EXPECT_LE(Metric(wafe, "tcl.expr.cache.hits"), 2u);
  // Only the top-level script and the loop body miss; iterations reuse the
  // precompiled body without even consulting the cache.
  EXPECT_LE(Metric(wafe, "tcl.script.cache.misses"), 3u);
  // A repeated standalone `expr`, by contrast, does consult the cache.
  ASSERT_EQ(wafe.Eval("expr 7 * 6").value, "42");
  ASSERT_EQ(wafe.Eval("expr 7 * 6").value, "42");
  EXPECT_GT(Metric(wafe, "tcl.expr.cache.hits"), 0u);
}

// Redefining a proc must pick up the new body even though the old body's IR
// is still alive in the cache: each Proc holds its own compiled handle.
TEST_F(ScriptCacheTest, ProcRedefinitionPicksUpNewBody) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("proc greet {} {return one}").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("greet").value, "one");
  ASSERT_EQ(wafe.Eval("proc greet {} {return two}").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("greet").value, "two");
  // And back again, now that both bodies have been seen (and cached) once.
  ASSERT_EQ(wafe.Eval("proc greet {} {return one}").code, wtcl::Status::kOk);
  EXPECT_EQ(wafe.Eval("greet").value, "one");
}

// scriptCacheFlush drops every compiled script and expr AST and reports how
// many entries went away; evaluation afterwards recompiles and still works.
TEST_F(ScriptCacheTest, ScriptCacheFlushDropsEverything) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("set a 1").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("expr 1 + 2").value, "3");
  EXPECT_GT(wafe.interp().ScriptCacheSize(), 0u);
  EXPECT_GT(wafe.interp().ExprCacheSize(), 0u);
  wtcl::Result r = wafe.Eval("scriptCacheFlush");
  ASSERT_EQ(r.code, wtcl::Status::kOk);
  EXPECT_GT(std::stoull(r.value), 0u);
  // The flush command itself was evaluated (and so re-cached) after the
  // flush ran, so the script cache holds at most that one entry.
  EXPECT_LE(wafe.interp().ScriptCacheSize(), 1u);
  EXPECT_EQ(wafe.interp().ExprCacheSize(), 0u);
  EXPECT_EQ(wafe.Eval("expr 1 + 2").value, "3");
}

// errorInfo must carry the same source line numbers whether the failing
// script was freshly parsed or replayed from cached IR.
TEST_F(ScriptCacheTest, CachedErrorTraceMatchesUncached) {
  const std::string script = "set a 1\nset b 2\nnoSuchCommand x y\n";
  Wafe wafe;
  auto trace = [&]() {
    wtcl::Result r = wafe.Eval(script);
    EXPECT_EQ(r.code, wtcl::Status::kError);
    std::string info;
    EXPECT_TRUE(wafe.interp().GetGlobalVar("errorInfo", &info));
    return info;
  };
  std::string fresh = trace();
  EXPECT_NE(fresh.find("line 3"), std::string::npos) << fresh;
  std::string cached = trace();
  EXPECT_EQ(fresh, cached);
  wafe.interp().FlushCompileCaches();
  EXPECT_EQ(fresh, trace());
}

// Proc bodies keep their line numbers through the per-proc compiled handle.
TEST_F(ScriptCacheTest, ProcBodyLineNumbersSurviveCaching) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("proc inner {} {\nset ok 1\nnoSuchCommand a b\n}").code,
            wtcl::Status::kOk);
  auto trace = [&]() {
    wtcl::Result r = wafe.Eval("inner");
    EXPECT_EQ(r.code, wtcl::Status::kError);
    std::string info;
    EXPECT_TRUE(wafe.interp().GetGlobalVar("errorInfo", &info));
    return info;
  };
  std::string first = trace();
  EXPECT_NE(first.find("line 3"), std::string::npos) << first;
  EXPECT_NE(first.find("noSuchCommand a b"), std::string::npos) << first;
  EXPECT_EQ(first, trace());
}

// The eval guards see cached and uncached execution identically: the same
// script trips the same limit with the same message either way.
TEST_F(ScriptCacheTest, GuardLimitsTripIdenticallyWhenCached) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("evalLimit steps 2000").code, wtcl::Status::kOk);
  wtcl::Result first = wafe.Eval("while {1} {set x 1}");
  ASSERT_EQ(first.code, wtcl::Status::kError);
  EXPECT_NE(first.value.find("step budget"), std::string::npos);
  // Cached replay trips the same way...
  wtcl::Result cached = wafe.Eval("while {1} {set x 1}");
  EXPECT_EQ(cached.code, first.code);
  EXPECT_EQ(cached.value, first.value);
  // ...and so does a recompile after a flush.
  wafe.interp().FlushCompileCaches();
  wtcl::Result flushed = wafe.Eval("while {1} {set x 1}");
  EXPECT_EQ(flushed.code, first.code);
  EXPECT_EQ(flushed.value, first.value);

  ASSERT_EQ(wafe.Eval("evalLimit depth 32").code, wtcl::Status::kOk);
  ASSERT_EQ(wafe.Eval("proc boom {} {boom}").code, wtcl::Status::kOk);
  first = wafe.Eval("boom");
  ASSERT_EQ(first.code, wtcl::Status::kError);
  EXPECT_NE(first.value.find("limit exceeded"), std::string::npos);
  cached = wafe.Eval("boom");
  EXPECT_EQ(cached.value, first.value);
}

// Malformed expressions report the same error cached (via the cached
// fallback marker) as on first sight.
TEST_F(ScriptCacheTest, MalformedExprErrorsAreStableAcrossCache) {
  Wafe wafe;
  auto run = [&]() {
    wtcl::Result r = wafe.Eval("expr 1 +");
    EXPECT_EQ(r.code, wtcl::Status::kError);
    return r.value;
  };
  std::string first = run();
  EXPECT_NE(first.find("syntax error"), std::string::npos);
  EXPECT_EQ(first, run());
  wafe.interp().FlushCompileCaches();
  EXPECT_EQ(first, run());
}

// Oversized scripts evaluate normally but are not retained, so a one-shot
// giant script cannot evict the hot loop bodies.
TEST_F(ScriptCacheTest, OversizedScriptsAreNotRetained) {
  Wafe wafe;
  ASSERT_EQ(wafe.Eval("set warm 1").code, wtcl::Status::kOk);
  std::size_t size = wafe.interp().ScriptCacheSize();
  std::string big = "set huge 1\n";
  big.reserve(70 * 1024);
  while (big.size() < 65 * 1024) {
    big += "set huge [expr $huge + 0]\n";
  }
  ASSERT_EQ(wafe.Eval(big).code, wtcl::Status::kOk);
  // The big script itself was not cached (only its inner pieces may be).
  EXPECT_EQ(wafe.Eval(big).code, wtcl::Status::kOk);
  EXPECT_GE(wafe.interp().ScriptCacheSize(), size);
}

// Acceptance: a callback storm — many clicks on the same button — reuses
// one compiled script instead of reparsing per dispatch.
TEST_F(ScriptCacheTest, CallbackStormHitsScriptCache) {
  ui_harness::UiHarness ui;
  EnableMetrics(ui.wafe());
  ASSERT_EQ(ui.wafe().Eval("set clicks 0").code, wtcl::Status::kOk);
  ASSERT_EQ(ui.wafe().Eval("command storm topLevel callback {incr clicks}").code,
            wtcl::Status::kOk);
  ui.Realize();
  for (int i = 0; i < 50; ++i) {
    ui.Click("storm");
  }
  EXPECT_EQ(ui.Eval("set clicks"), "50");
  EXPECT_GT(Metric(ui.wafe(), "tcl.script.cache.hits"), 0u);
}

}  // namespace
}  // namespace wafe
